package psg

import (
	"math/rand"
	"testing"

	"hopi/internal/graph"
	"hopi/internal/partition"
	"hopi/internal/twohop"
	"hopi/internal/xmlmodel"
)

// buildParts computes the per-partition structures the joins consume,
// exactly the way the core pipeline does.
func buildParts(c *xmlmodel.Collection, p *partition.Partitioning, withDist bool) []*PartitionData {
	parts := make([]*PartitionData, p.NumParts())
	for pi, docs := range p.Parts {
		g, globals := partition.ElementSubgraph(c, docs)
		var cov *twohop.Cover
		if withDist {
			dm := graph.NewDistanceMatrix(g)
			cov, _ = twohop.BuildDistanceAware(dm, twohop.Options{})
		} else {
			cl := graph.NewClosure(g)
			cov, _ = twohop.Build(cl, twohop.Options{})
		}
		parts[pi] = NewPartitionData(docs, g, globals, cov)
	}
	return parts
}

// chainCollection: n docs of k elements, doc i's last element links to
// doc i+1's root.
func chainCollection(n, k int) *xmlmodel.Collection {
	c := xmlmodel.NewCollection()
	for i := 0; i < n; i++ {
		d := xmlmodel.NewDocument("", "pub")
		for j := 1; j < k; j++ {
			d.AddElement(int32((j-1)/2), "sec") // small binary-ish tree
		}
		c.AddDocument(d)
	}
	for i := 0; i < n-1; i++ {
		if err := c.AddLink(c.GlobalID(i, int32(k-1)), c.GlobalID(i+1, 0)); err != nil {
			panic(err)
		}
	}
	return c
}

func randomCollection(rng *rand.Rand, nDocs, maxElems, nLinks int) *xmlmodel.Collection {
	c := xmlmodel.NewCollection()
	for i := 0; i < nDocs; i++ {
		d := xmlmodel.NewDocument("", "r")
		k := 1 + rng.Intn(maxElems)
		for j := 1; j < k; j++ {
			d.AddElement(int32(rng.Intn(j)), "e")
		}
		c.AddDocument(d)
	}
	for i := 0; i < nLinks; i++ {
		fd, td := rng.Intn(nDocs), rng.Intn(nDocs)
		fl := int32(rng.Intn(c.Docs[fd].Len()))
		tl := int32(rng.Intn(c.Docs[td].Len()))
		if err := c.AddLink(c.GlobalID(fd, fl), c.GlobalID(td, tl)); err != nil {
			panic(err)
		}
	}
	return c
}

func partOfFunc(c *xmlmodel.Collection, p *partition.Partitioning) func(int32) int {
	return func(id int32) int { return p.PartOfID(c, id) }
}

func TestPSGBuildChain(t *testing.T) {
	c := chainCollection(4, 3)
	p := partition.NodeCapped(c, 6, nil, 1) // 2 docs per partition
	parts := buildParts(c, p, false)
	s := Build(c, p.CrossLinks, partOfFunc(c, p), parts, false)
	if len(s.Nodes) == 0 {
		t.Fatal("PSG empty despite cross links")
	}
	// every cross link's endpoints are PSG nodes and the link is an edge
	for _, l := range p.CrossLinks {
		f, ok1 := s.Index[l.From]
		tt, ok2 := s.Index[l.To]
		if !ok1 || !ok2 {
			t.Fatal("cross-link endpoint missing from PSG")
		}
		if !s.G.HasEdge(f, tt) {
			t.Error("cross link not a PSG edge")
		}
		if !s.IsSource[f] || !s.IsTarget[tt] {
			t.Error("source/target roles wrong")
		}
	}
}

func TestPSGIntraEdgesRequireConnection(t *testing.T) {
	// One partition containing a doc where the incoming link target is
	// a LEAF — it cannot reach the outgoing link source, so no
	// target→source edge may appear.
	c := xmlmodel.NewCollection()
	d0 := xmlmodel.NewDocument("", "a")
	d0.AddElement(0, "b") // leaf 1: link source
	c.AddDocument(d0)
	d1 := xmlmodel.NewDocument("", "a")
	d1.AddElement(0, "b") // leaf 1: incoming target
	d1.AddElement(0, "c") // leaf 2: outgoing source
	c.AddDocument(d1)
	d2 := xmlmodel.NewDocument("", "a")
	c.AddDocument(d2)
	// d0/1 → d1/1 (target = leaf), d1/2 → d2/0
	if err := c.AddLink(c.GlobalID(0, 1), c.GlobalID(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := c.AddLink(c.GlobalID(1, 2), c.GlobalID(2, 0)); err != nil {
		t.Fatal(err)
	}
	p := partition.Single(c)
	parts := buildParts(c, p, false)
	s := Build(c, p.CrossLinks, partOfFunc(c, p), parts, false)
	tgt := s.Index[c.GlobalID(1, 1)]
	src := s.Index[c.GlobalID(1, 2)]
	if s.G.HasEdge(tgt, src) {
		t.Error("PSG has target→source edge for unconnected endpoints")
	}
	// and the root→child connection case: make a collection where the
	// target is the root — edge must exist.
	c2 := chainCollection(3, 3)
	p2 := partition.Single(c2)
	parts2 := buildParts(c2, p2, false)
	s2 := Build(c2, p2.CrossLinks, partOfFunc(c2, p2), parts2, false)
	tgt2 := s2.Index[c2.GlobalID(1, 0)] // root of doc 1, target of link 0→1
	src2 := s2.Index[c2.GlobalID(1, 2)] // last element of doc 1, source of link 1→2
	if !s2.G.HasEdge(tgt2, src2) {
		t.Error("PSG missing target→source edge for connected endpoints")
	}
}

func TestComputeHBarChain(t *testing.T) {
	c := chainCollection(4, 3)
	p := partition.Single(c)
	parts := buildParts(c, p, false)
	s := Build(c, p.CrossLinks, partOfFunc(c, p), parts, false)
	hb := ComputeHBar(s, false)
	// the first link source must reach all 3 downstream targets
	src := s.Index[c.GlobalID(0, 2)]
	if got := len(hb.OutTargets[src]); got != 3 {
		t.Errorf("first source reaches %d targets, want 3", got)
	}
	// the last target reaches nothing; it must not appear as a source
	if _, ok := hb.OutTargets[s.Index[c.GlobalID(3, 0)]]; ok {
		t.Error("pure target has out entries")
	}
}

// joinAndVerify builds the ground truth closure of the element graph
// and checks a joined cover against it.
func joinAndVerify(t *testing.T, c *xmlmodel.Collection, cov *twohop.Cover) {
	t.Helper()
	cl := graph.NewClosure(c.ElementGraph())
	if err := twohop.Verify(cov, cl); err != nil {
		t.Fatal(err)
	}
}

func TestJoinNewChain(t *testing.T) {
	c := chainCollection(5, 4)
	p := partition.NodeCapped(c, 8, nil, 1)
	parts := buildParts(c, p, false)
	cov := JoinNew(c, p.CrossLinks, partOfFunc(c, p), parts, NewJoinOptions{})
	joinAndVerify(t, c, cov)
}

func TestJoinNewNoCrossLinks(t *testing.T) {
	c := chainCollection(3, 4)
	p := partition.Whole(c)
	parts := buildParts(c, p, false)
	cov := JoinNew(c, nil, partOfFunc(c, p), parts, NewJoinOptions{})
	joinAndVerify(t, c, cov)
}

func TestJoinOldChain(t *testing.T) {
	c := chainCollection(5, 4)
	p := partition.NodeCapped(c, 8, nil, 1)
	parts := buildParts(c, p, false)
	cov := JoinOld(c, p.CrossLinks, parts, false)
	joinAndVerify(t, c, cov)
}

// Property: both joins produce correct covers on random collections
// with arbitrary partitionings, including cyclic link structures.
func TestJoinsRandomCorrect(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := randomCollection(rng, 3+rng.Intn(8), 6, rng.Intn(14))
		for _, mk := range []func() *partition.Partitioning{
			func() *partition.Partitioning { return partition.Single(c) },
			func() *partition.Partitioning { return partition.NodeCapped(c, 12, nil, seed) },
			func() *partition.Partitioning { return partition.ClosureBudget(c, 80, nil, seed) },
		} {
			p := mk()
			parts := buildParts(c, p, false)
			covNew := JoinNew(c, p.CrossLinks, partOfFunc(c, p), parts, NewJoinOptions{})
			joinAndVerify(t, c, covNew)
			covFull := JoinNew(c, p.CrossLinks, partOfFunc(c, p), parts, NewJoinOptions{FullPSGCover: true, Seed: seed})
			joinAndVerify(t, c, covFull)
			covOld := JoinOld(c, p.CrossLinks, parts, false)
			joinAndVerify(t, c, covOld)
		}
	}
}

// Property: distance-aware joins report exact global distances.
func TestJoinsRandomDistanceExact(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := randomCollection(rng, 3+rng.Intn(6), 5, rng.Intn(10))
		dmGlobal := graph.NewDistanceMatrix(c.ElementGraph())
		p := partition.NodeCapped(c, 10, nil, seed)
		parts := buildParts(c, p, true)

		covNew := JoinNew(c, p.CrossLinks, partOfFunc(c, p), parts, NewJoinOptions{WithDist: true})
		if err := twohop.VerifyDistance(covNew, dmGlobal); err != nil {
			t.Fatalf("seed %d JoinNew: %v", seed, err)
		}
		covFull := JoinNew(c, p.CrossLinks, partOfFunc(c, p), parts, NewJoinOptions{WithDist: true, FullPSGCover: true, Seed: seed})
		if err := twohop.VerifyDistance(covFull, dmGlobal); err != nil {
			t.Fatalf("seed %d JoinNew(full): %v", seed, err)
		}
		covOld := JoinOld(c, p.CrossLinks, parts, true)
		if err := twohop.VerifyDistance(covOld, dmGlobal); err != nil {
			t.Fatalf("seed %d JoinOld: %v", seed, err)
		}
	}
}

func TestCoverIndexAncestorsDescendants(t *testing.T) {
	// cover for a chain 0→1→2 built by hand
	cov := twohop.NewCover(3, false)
	cov.AddOut(0, 1, 0) // center 1 covers (0,1) and (0,2) with Lin side below
	cov.AddIn(2, 1, 0)
	cov.Finish()
	ix := NewCoverIndex(cov)
	anc := ix.Ancestors(2)
	if len(anc) != 3 {
		t.Errorf("Ancestors(2) = %v, want {2,1,0}", anc)
	}
	desc := ix.Descendants(0)
	if len(desc) != 3 {
		t.Errorf("Descendants(0) = %v, want {0,1,2}", desc)
	}
	if got := ix.Descendants(2); len(got) != 1 || got[0] != 2 {
		t.Errorf("Descendants(2) = %v", got)
	}
}

func TestIntegrateLinkCreatesConnections(t *testing.T) {
	// two disconnected chains 0→1 and 2→3; integrate link 1→2
	cov := twohop.NewCover(4, false)
	cov.AddOut(0, 1, 0)
	cov.AddIn(3, 2, 0)
	cov.Finish()
	ix := NewCoverIndex(cov)
	ix.IntegrateLink(1, 2)
	for _, pair := range [][2]int32{{0, 2}, {0, 3}, {1, 2}, {1, 3}} {
		if !ix.Cover().Reaches(pair[0], pair[1]) {
			t.Errorf("after integrate, %d should reach %d", pair[0], pair[1])
		}
	}
	if ix.Cover().Reaches(2, 0) {
		t.Error("phantom connection 2→0")
	}
}

func BenchmarkJoinNewChain40(b *testing.B) {
	c := chainCollection(40, 5)
	p := partition.NodeCapped(c, 20, nil, 1)
	parts := buildParts(c, p, false)
	pof := partOfFunc(c, p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		JoinNew(c, p.CrossLinks, pof, parts, NewJoinOptions{})
	}
}

func BenchmarkJoinOldChain40(b *testing.B) {
	c := chainCollection(40, 5)
	p := partition.NodeCapped(c, 20, nil, 1)
	parts := buildParts(c, p, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		JoinOld(c, p.CrossLinks, parts, false)
	}
}
