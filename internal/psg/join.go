package psg

import (
	"hopi/internal/graph"
	"hopi/internal/twohop"
	"hopi/internal/xmlmodel"
)

// NewJoinOptions tunes the §4.1 join.
type NewJoinOptions struct {
	// WithDist builds a distance-aware global cover; partition covers
	// must have been built distance-aware too.
	WithDist bool
	// FullPSGCover computes a real 2-hop cover H over the PSG
	// (Theorem 1) instead of the cheaper H̄ (Corollary 1). The paper
	// recommends H̄; the H variant exists for the ablation benchmarks.
	// It materializes the PSG closure, so it is only sensible for PSGs
	// whose closure fits in memory.
	FullPSGCover bool
	// Seed feeds the 2-hop builder when FullPSGCover is set.
	Seed int64
}

// JoinNew merges partition covers into a global cover with the
// structurally recursive algorithm of §4.1:
//
//  1. start from the component-wise union of the partition covers,
//  2. build the partition-level skeleton graph S(P),
//  3. compute H̄ (link targets as centers; Corollary 1) or a full
//     2-hop cover H of the PSG (Theorem 1),
//  4. compute the supplementary cover Ĥ by copying each link source's
//     out-labels to its partition-level ancestors and registering each
//     link target as center for its partition-level descendants.
//
// The result covers exactly the connections of G_E(X).
func JoinNew(c *xmlmodel.Collection, cross []xmlmodel.Link, partOfID func(int32) int,
	parts []*PartitionData, opts NewJoinOptions) *twohop.Cover {

	global := unionPartitionCovers(c, parts, opts.WithDist)
	if len(cross) == 0 {
		global.Finish()
		return global
	}
	s := Build(c, cross, partOfID, parts, opts.WithDist)

	// Step 3: labels over the PSG.
	// hbarOut[s] holds (global center, PSG distance) entries each link
	// source must propagate to its partition-level ancestors;
	// hIn[t] holds the Lin side for targets (only used by the full-H
	// variant — H̄in(t) = {t} stays implicit otherwise).
	hbarOut := map[int32][]twohop.Entry{}
	hIn := map[int32][]twohop.Entry{}
	if opts.FullPSGCover {
		hcov := fullPSGCover(s, opts)
		for li := int32(0); li < int32(len(s.Nodes)); li++ {
			gid := s.Nodes[li]
			// The PSG cover's own labels join the global cover.
			for _, e := range hcov.Out[li] {
				global.AddOut(gid, s.Nodes[e.Center], e.Dist)
			}
			for _, e := range hcov.In[li] {
				global.AddIn(gid, s.Nodes[e.Center], e.Dist)
			}
			// Materialize implicit self entries for propagation: an
			// ancestor of s needs s itself among the copied centers.
			if s.IsSource[li] {
				out := append([]twohop.Entry{{Center: gid, Dist: 0}}, remap(hcov.Out[li], s.Nodes)...)
				hbarOut[li] = out
			}
			if s.IsTarget[li] {
				in := append([]twohop.Entry{{Center: gid, Dist: 0}}, remap(hcov.In[li], s.Nodes)...)
				hIn[li] = in
			}
		}
	} else {
		hb := ComputeHBar(s, opts.WithDist)
		for li, entries := range hb.OutTargets {
			hbarOut[li] = remap(entries, s.Nodes)
		}
		// H̄out(s) must also work for paths that END at a target s
		// reaches... no: Lin side. For the H̄ variant every target t is
		// its own (implicit) Lin center; descendants receive t itself.
		for li := int32(0); li < int32(len(s.Nodes)); li++ {
			if s.IsTarget[li] {
				hIn[li] = []twohop.Entry{{Center: s.Nodes[li], Dist: 0}}
			}
		}
	}

	// Step 4: supplementary cover Ĥ.
	for li := int32(0); li < int32(len(s.Nodes)); li++ {
		gid := s.Nodes[li]
		pd := parts[partOfID(gid)]
		local := pd.Local[gid]
		if out := hbarOut[li]; len(out) > 0 {
			// every partition-level ancestor a of the link source
			// (including the source itself) inherits the out-labels
			dists := pd.G.ReverseBFSFrom(local)
			for a := int32(0); a < int32(len(dists)); a++ {
				da := dists[a]
				if da == graph.InfDist {
					continue
				}
				ag := pd.Globals[a]
				for _, e := range out {
					global.AddOut(ag, e.Center, da+e.Dist)
				}
			}
		}
		if in := hIn[li]; len(in) > 0 && s.IsTarget[li] {
			dists := pd.G.BFSFrom(local)
			for d := int32(0); d < int32(len(dists)); d++ {
				dd := dists[d]
				if dd == graph.InfDist {
					continue
				}
				dg := pd.Globals[d]
				for _, e := range in {
					global.AddIn(dg, e.Center, e.Dist+dd)
				}
			}
		}
	}
	global.Finish()
	return global
}

func remap(entries []twohop.Entry, nodes []int32) []twohop.Entry {
	out := make([]twohop.Entry, len(entries))
	for i, e := range entries {
		out[i] = twohop.Entry{Center: nodes[e.Center], Dist: e.Dist}
	}
	return out
}

// fullPSGCover materializes the PSG closure and builds a real 2-hop
// cover over it — the paper's "recursively apply the algorithm" branch
// with the recursion bottoming out immediately (our PSGs fit in
// memory; see the package comment of ComputeHBar).
func fullPSGCover(s *PSG, opts NewJoinOptions) *twohop.Cover {
	if opts.WithDist {
		dm := psgDistanceMatrix(s)
		cov, _ := twohop.BuildDistanceAware(dm, twohop.Options{Seed: opts.Seed})
		return cov
	}
	cl := graph.NewClosure(s.G)
	cov, _ := twohop.Build(cl, twohop.Options{Seed: opts.Seed})
	return cov
}

func psgDistanceMatrix(s *PSG) *graph.DistanceMatrix {
	n := len(s.Nodes)
	d := make([][]uint32, n)
	for u := int32(0); u < int32(n); u++ {
		d[u] = dijkstra(s, u)
	}
	return &graph.DistanceMatrix{Dist: d}
}

// unionPartitionCovers remaps every partition cover to global IDs — the
// component-wise union L = ∪ Hi that both joins start from.
func unionPartitionCovers(c *xmlmodel.Collection, parts []*PartitionData, withDist bool) *twohop.Cover {
	global := twohop.NewCover(c.NumAllocatedIDs(), withDist)
	for _, pd := range parts {
		for local := int32(0); local < int32(len(pd.Globals)); local++ {
			gid := pd.Globals[local]
			for _, e := range pd.Cover.Out[local] {
				global.AddOut(gid, pd.Globals[e.Center], e.Dist)
			}
			for _, e := range pd.Cover.In[local] {
				global.AddIn(gid, pd.Globals[e.Center], e.Dist)
			}
		}
	}
	return global
}
