package psg

import (
	"testing"

	"hopi/internal/graph"
	"hopi/internal/partition"
	"hopi/internal/twohop"
	"hopi/internal/xmlmodel"
)

// TestPSGEdgeDistKeepsMinimum: when a target reaches a source over
// several internal routes, the PSG edge weight must be the shortest
// internal distance.
func TestPSGEdgeDistKeepsMinimum(t *testing.T) {
	c := xmlmodel.NewCollection()
	// doc 0: root(0) → a(1); plus shortcut link root→b and chain via a
	d0 := xmlmodel.NewDocument("", "r")
	a := d0.AddElement(0, "a") // 1
	b := d0.AddElement(a, "b") // 2: depth 2 via tree
	d0.AddIntraLink(0, b)      // direct shortcut root→b: depth 1
	_ = b
	c.AddDocument(d0)
	d1 := xmlmodel.NewDocument("", "r")
	c.AddDocument(d1)
	d2 := xmlmodel.NewDocument("", "r")
	c.AddDocument(d2)
	// incoming link lands on doc0 root (target), outgoing leaves from b
	if err := c.AddLink(c.GlobalID(1, 0), c.GlobalID(0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := c.AddLink(c.GlobalID(0, 2), c.GlobalID(2, 0)); err != nil {
		t.Fatal(err)
	}
	p := partition.Single(c)
	parts := buildParts(c, p, true)
	s := Build(c, p.CrossLinks, partOfFunc(c, p), parts, true)
	tgt := s.Index[c.GlobalID(0, 0)]
	src := s.Index[c.GlobalID(0, 2)]
	if got := s.EdgeDist[[2]int32{tgt, src}]; got != 1 {
		t.Errorf("PSG edge dist = %d, want 1 (shortcut, not the depth-2 tree path)", got)
	}
	// end-to-end distances through the PSG stay exact
	cov := JoinNew(c, p.CrossLinks, partOfFunc(c, p), parts, NewJoinOptions{WithDist: true})
	dm := graph.NewDistanceMatrix(c.ElementGraph())
	if err := twohop.VerifyDistance(cov, dm); err != nil {
		t.Fatal(err)
	}
}

// TestHBarOnCyclicPSG: document-level link cycles make the PSG cyclic;
// H̄ must still enumerate all reachable targets.
func TestHBarOnCyclicPSG(t *testing.T) {
	c := xmlmodel.NewCollection()
	for i := 0; i < 3; i++ {
		d := xmlmodel.NewDocument("", "r")
		d.AddElement(0, "x")
		c.AddDocument(d)
	}
	// ring of root→root links: 0→1→2→0
	for i := 0; i < 3; i++ {
		if err := c.AddLink(c.GlobalID(i, 0), c.GlobalID((i+1)%3, 0)); err != nil {
			t.Fatal(err)
		}
	}
	p := partition.Single(c)
	parts := buildParts(c, p, false)
	s := Build(c, p.CrossLinks, partOfFunc(c, p), parts, false)
	hb := ComputeHBar(s, false)
	// every root is both source and target; from each source all three
	// roots are reachable targets (the other two plus itself via the
	// ring — self entries stay implicit, so expect 2 explicit entries).
	for i := 0; i < 3; i++ {
		li := s.Index[c.GlobalID(i, 0)]
		if got := len(hb.OutTargets[li]); got != 2 {
			t.Errorf("source %d reaches %d explicit targets, want 2", i, got)
		}
	}
	cov := JoinNew(c, p.CrossLinks, partOfFunc(c, p), parts, NewJoinOptions{})
	joinAndVerify(t, c, cov)
}

// TestJoinPreservesPartitionDistances: distance-aware join where the
// globally shortest path between two same-partition elements leaves the
// partition (the subtle case the PSG edge weights exist for).
func TestJoinShortestPathLeavesPartition(t *testing.T) {
	c := xmlmodel.NewCollection()
	// doc0: root → a → b → c → d (chain of 5); internal dist root→d = 4
	d0 := xmlmodel.NewDocument("", "r")
	prev := int32(0)
	for i := 0; i < 4; i++ {
		prev = d0.AddElement(prev, "n")
	}
	c.AddDocument(d0)
	// doc1: single hop detour: doc0 root → doc1 root → doc0 d
	d1 := xmlmodel.NewDocument("", "r")
	c.AddDocument(d1)
	if err := c.AddLink(c.GlobalID(0, 0), c.GlobalID(1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := c.AddLink(c.GlobalID(1, 0), c.GlobalID(0, prev)); err != nil {
		t.Fatal(err)
	}
	p := partition.Single(c)
	parts := buildParts(c, p, true)
	cov := JoinNew(c, p.CrossLinks, partOfFunc(c, p), parts, NewJoinOptions{WithDist: true})
	dm := graph.NewDistanceMatrix(c.ElementGraph())
	if err := twohop.VerifyDistance(cov, dm); err != nil {
		t.Fatal(err)
	}
	// the detour (2 hops) beats the internal chain (4 hops)
	if d := cov.Distance(c.GlobalID(0, 0), c.GlobalID(0, prev)); d != 2 {
		t.Errorf("distance = %d, want 2 via the external detour", d)
	}
}
