package hopi

import (
	"context"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"time"

	"hopi/internal/query"
)

// Sentinel errors for resume-token validation; match with errors.Is.
var (
	// ErrBadToken wraps malformed resume tokens and tokens issued for a
	// different query or ranking mode.
	ErrBadToken = errors.New("invalid page token")
	// ErrStaleToken wraps resume tokens issued against a different
	// snapshot epoch: the index has been maintained since the token was
	// handed out, so the page sequence it belongs to no longer exists.
	// Restart the query from the beginning — unless the failure is a
	// *StaleTokenError with Retryable set, in which case this replica
	// simply has not applied the token's batch yet and the same token
	// will succeed once it catches up.
	ErrStaleToken = errors.New("stale page token: snapshot epoch changed")
)

// StaleTokenError is the concrete error for an epoch-mismatched resume
// token; errors.Is(err, ErrStaleToken) matches it. On snapshots whose
// epoch is a durable WAL sequence (durable primaries and replication
// followers — see Snapshot.Epoch), the mismatch is ordered: a token
// stamped ahead of the snapshot means the serving replica is behind
// the replica that issued it, and Retryable is set — the caller should
// retry the same token (HTTP servers translate this to 503 with
// Retry-After rather than 400), not restart the page walk.
type StaleTokenError struct {
	TokenEpoch    uint64
	SnapshotEpoch uint64
	Retryable     bool
}

func (e *StaleTokenError) Error() string {
	if e.Retryable {
		return fmt.Sprintf("stale page token: snapshot epoch changed (token epoch %d ahead of replica epoch %d; retry once the replica catches up)",
			e.TokenEpoch, e.SnapshotEpoch)
	}
	return fmt.Sprintf("stale page token: snapshot epoch changed (token epoch %d, snapshot epoch %d)", e.TokenEpoch, e.SnapshotEpoch)
}

// Unwrap lets errors.Is(err, ErrStaleToken) match.
func (e *StaleTokenError) Unwrap() error { return ErrStaleToken }

// PreparedQuery is the compiled, snapshot-independent form of a path
// expression: the parsed steps plus per-step metadata. Prepare once,
// run against any snapshot of any index — Snapshot.Run, Snapshot.
// Explain, Index.Run and the QueryCtx compatibility wrappers all
// execute prepared queries, so a hot expression parses exactly once
// (cmd/hopiserve keeps an LRU cache of them keyed by expression).
type PreparedQuery struct {
	q    *query.Query
	hash uint32
}

// Prepare parses and compiles a path expression such as
// "//book//author" or "/bib/book//title".
func Prepare(expr string) (*PreparedQuery, error) {
	q, err := query.Parse(expr)
	if err != nil {
		return nil, err
	}
	h := fnv.New32a()
	h.Write([]byte(q.Canonical()))
	return &PreparedQuery{q: q, hash: h.Sum32()}, nil
}

// String returns the query's expression.
func (p *PreparedQuery) String() string { return p.q.String() }

// NumSteps returns the number of location steps.
func (p *PreparedQuery) NumSteps() int { return len(p.q.Steps) }

// PreparedStep describes one compiled location step.
type PreparedStep struct {
	// Axis is "/" (child) or "//" (descendant-or-link).
	Axis string
	// Tag is the step's tag test; "*" matches any element.
	Tag string
}

// Steps returns the compiled location steps.
func (p *PreparedQuery) Steps() []PreparedStep {
	out := make([]PreparedStep, len(p.q.Steps))
	for i, s := range p.q.Steps {
		out[i].Tag = s.Tag
		out[i].Axis = "/"
		if s.Axis == query.AxisDescendant {
			out[i].Axis = "//"
		}
	}
	return out
}

// Plan is the EXPLAIN report of one query execution: per step, the
// candidate-set size, the evaluator the engine chose (semijoin vs
// pairwise vs the cursor's streaming/top-k variants), the frontier
// sizes, and the posting entries touched. See Snapshot.Explain.
type Plan = query.Plan

// StepPlan is one step of a Plan.
type StepPlan = query.StepPlan

// --- resume tokens ----------------------------------------------------

// resumePos is the decoded content of a resume token: where to pick a
// query back up, and the guards that make the token safe to accept
// from an untrusted client.
type resumePos struct {
	scope    uint64  // replication-scope identity of the issuing index
	epoch    uint64  // snapshot epoch the token was issued at
	hash     uint32  // prepared-query hash the token belongs to
	ranked   bool    // ranking mode the token was issued under
	hasAfter bool    // false: resume from the start
	after    int32   // last emitted element
	score    float64 // its score (ranked order tiebreak)
}

const (
	tokenVersion = 2 // v2 added the 8-byte scope; v1 tokens are rejected
	tokenLen     = 1 + 8 + 8 + 4 + 1 + 4 + 8
)

func (t resumePos) encode() string {
	var b [tokenLen]byte
	b[0] = tokenVersion
	binary.LittleEndian.PutUint64(b[1:], t.scope)
	binary.LittleEndian.PutUint64(b[9:], t.epoch)
	binary.LittleEndian.PutUint32(b[17:], t.hash)
	var flags byte
	if t.ranked {
		flags |= 1
	}
	if t.hasAfter {
		flags |= 2
	}
	b[21] = flags
	binary.LittleEndian.PutUint32(b[22:], uint32(t.after))
	binary.LittleEndian.PutUint64(b[26:], math.Float64bits(t.score))
	return base64.RawURLEncoding.EncodeToString(b[:])
}

func decodeToken(s string) (resumePos, error) {
	raw, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return resumePos{}, fmt.Errorf("%w: %v", ErrBadToken, err)
	}
	if len(raw) != tokenLen || raw[0] != tokenVersion {
		return resumePos{}, fmt.Errorf("%w: wrong length or version", ErrBadToken)
	}
	return resumePos{
		scope:    binary.LittleEndian.Uint64(raw[1:]),
		epoch:    binary.LittleEndian.Uint64(raw[9:]),
		hash:     binary.LittleEndian.Uint32(raw[17:]),
		ranked:   raw[21]&1 != 0,
		hasAfter: raw[21]&2 != 0,
		after:    int32(binary.LittleEndian.Uint32(raw[22:])),
		score:    math.Float64frombits(binary.LittleEndian.Uint64(raw[26:])),
	}, nil
}

// --- cursor -----------------------------------------------------------

// Cursor iterates a query's results one at a time:
//
//	cur, err := snap.Run(ctx, pq, hopi.QueryLimit(10))
//	for cur.Next() { use(cur.Result()) }
//	err = cur.Err()
//	cur.Close()
//
// Unranked results stream in ascending element order, ranked results
// in (score desc, element asc) order — both identical to the order
// QueryCtx materializes, so a limited cursor yields exactly a prefix
// of the unlimited result. With QueryLimit the final step's evaluation
// stops early (limit pushdown); Token returns an opaque resume token
// for the position after the last result, valid on snapshots of the
// same epoch only. A Cursor is single-goroutine; Close is idempotent.
type Cursor struct {
	snap   *Snapshot
	st     *query.Stream
	pq     *PreparedQuery
	ranked bool
	limit  int
	n      int
	cur    QueryResult

	last    resumePos // position after the last emitted result
	hasMore bool
	peeked  bool

	// Metrics plumbing: start stamps Run time, plan records the
	// per-step evaluation modes (labeling the latency histogram), and
	// observed keeps the idempotent Close from double-counting. All
	// zero when the snapshot has no metrics hub.
	start    time.Time
	plan     *query.Plan
	observed bool
}

// Run starts a cursor over a prepared query. Options: QueryLimit (the
// cursor stops after n results, and the final step's evaluation stops
// expanding postings early), QueryRanked, and QueryResume (continue
// after a previous cursor's Token). A resume token from a different
// query or ranking mode fails with ErrBadToken; one from a different
// snapshot epoch with ErrStaleToken.
func (s *Snapshot) Run(ctx context.Context, pq *PreparedQuery, opts ...QueryOption) (*Cursor, error) {
	var cfg queryConfig
	for _, o := range opts {
		o(&cfg)
	}
	so := query.StreamOpts{Ranked: cfg.ranked}
	if cfg.limit > 0 {
		// Ask the engine for one extra result: it makes HasMore (and
		// the server's nextPageToken decision) free, at the cost of at
		// most one additional match.
		so.Limit = cfg.limit + 1
	}
	c := &Cursor{snap: s, pq: pq, ranked: cfg.ranked, limit: cfg.limit}
	if s.met != nil {
		// Attach a plan so the run records which evaluator each step
		// chose; the latency histogram is labeled by the final step's
		// mode when the cursor closes.
		c.start = time.Now()
		c.plan = query.NewPlan(pq.q, cfg.ranked, cfg.limit)
		so.Plan = c.plan
	}
	c.last = resumePos{scope: s.scope, epoch: s.epoch, hash: pq.hash, ranked: cfg.ranked}
	if cfg.resume != "" {
		tok, err := decodeToken(cfg.resume)
		if err != nil {
			return nil, err
		}
		// Scope first: a token from an unrelated index (different store,
		// different replication group, a plain in-memory instance) is
		// invalid outright — sequence-valued epochs from different
		// groups must neither collide into a silent resume nor read as
		// "replica behind" and trap clients in 503 retries.
		if tok.scope != s.scope {
			return nil, fmt.Errorf("%w: issued by a different index", ErrBadToken)
		}
		if tok.epoch != s.epoch {
			return nil, &StaleTokenError{
				TokenEpoch:    tok.epoch,
				SnapshotEpoch: s.epoch,
				Retryable:     s.seqEpoch && tok.epoch > s.epoch,
			}
		}
		if tok.hash != pq.hash {
			return nil, fmt.Errorf("%w: issued for a different query", ErrBadToken)
		}
		if tok.ranked != cfg.ranked {
			return nil, fmt.Errorf("%w: issued for a different ranking mode", ErrBadToken)
		}
		if tok.hasAfter {
			so.HasAfter, so.After, so.AfterScore = true, tok.after, tok.score
			c.last = tok
		}
	}
	st, err := s.eng.Stream(ctx, pq.q, so)
	if err != nil {
		return nil, err
	}
	c.st = st
	return c, nil
}

// Run is a convenience wrapper over the current snapshot; see
// Snapshot.Run.
func (ix *Index) Run(ctx context.Context, pq *PreparedQuery, opts ...QueryOption) (*Cursor, error) {
	return ix.Snapshot().Run(ctx, pq, opts...)
}

// Next advances the cursor. It returns false when the result set is
// exhausted, the limit is reached, or evaluation failed — check Err.
func (c *Cursor) Next() bool {
	if c.limit > 0 && c.n >= c.limit {
		c.peek()
		return false
	}
	if !c.st.Next() {
		return false
	}
	c.n++
	el, score := c.st.Element(), c.st.Score()
	c.cur = c.snap.result(el, score, c.st.Path())
	c.last.hasAfter, c.last.after, c.last.score = true, el, score
	return true
}

// peek consumes the one extra result the stream was asked for, to
// learn whether anything follows the limit.
func (c *Cursor) peek() {
	if !c.peeked {
		c.peeked = true
		c.hasMore = c.st.Next()
	}
}

// Result returns the current result. Valid after Next returned true.
func (c *Cursor) Result() QueryResult { return c.cur }

// Err returns the first evaluation error (e.g. a cancelled context),
// or nil.
func (c *Cursor) Err() error { return c.st.Err() }

// Close releases the cursor's scratch state. Idempotent.
func (c *Cursor) Close() {
	c.st.Close()
	if c.snap.met != nil && !c.observed {
		c.observed = true
		c.snap.met.queryLatency.With(c.plan.DominantMode()).ObserveSince(c.start)
	}
}

// HasMore reports whether results remain past the limit — the signal
// to hand out Token as a next-page token. Only meaningful once Next
// has returned false.
func (c *Cursor) HasMore() bool {
	if c.limit > 0 && c.n >= c.limit {
		c.peek()
	}
	return c.hasMore
}

// Token returns an opaque resume token for the position after the last
// result returned by Next. Pass it to a later Run via QueryResume to
// continue the page sequence; tokens are valid only for the same query
// and ranking mode on a snapshot of the same epoch (maintenance bumps
// the epoch, invalidating outstanding tokens).
func (c *Cursor) Token() string { return c.last.encode() }

// Explain runs the prepared query to completion under the given
// options (QueryLimit and QueryRanked; QueryResume is ignored) and
// reports, per step, the evaluator chosen, the frontier and
// candidate-set sizes, and the posting entries touched. Evaluation
// polls ctx like every other query entry point.
func (s *Snapshot) Explain(ctx context.Context, pq *PreparedQuery, opts ...QueryOption) (*Plan, error) {
	var cfg queryConfig
	for _, o := range opts {
		o(&cfg)
	}
	return s.eng.Explain(ctx, pq.q, cfg.ranked, cfg.limit)
}

// Explain is a convenience wrapper over the current snapshot; see
// Snapshot.Explain.
func (ix *Index) Explain(ctx context.Context, pq *PreparedQuery, opts ...QueryOption) (*Plan, error) {
	return ix.Snapshot().Explain(ctx, pq, opts...)
}
