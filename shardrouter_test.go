package hopi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"hopi/internal/gen"
	"hopi/internal/shardrouter"
)

// resultRow is the shard-independent identity of one query result:
// what must be byte-identical between the router and a single
// unsharded index over the same collection.
type resultRow struct {
	Doc   string
	Local int32
	Tag   string
	Score float64
}

func singleRows(ix *Index, res []QueryResult) []resultRow {
	c := ix.Collection().Unwrap()
	out := make([]resultRow, len(res))
	for i, r := range res {
		_, local := c.LocalID(r.Element)
		out[i] = resultRow{Doc: r.Doc, Local: local, Tag: r.Tag, Score: r.Score}
	}
	return out
}

func routerRows(res []RouterResult) []resultRow {
	out := make([]resultRow, len(res))
	for i, r := range res {
		out[i] = resultRow{Doc: r.Doc, Local: r.Local, Tag: r.Tag, Score: r.Score}
	}
	return out
}

func diffRows(t *testing.T, label string, got, want []resultRow) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d\n got: %v\nwant: %v", label, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: [%d] = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

type shardedFixture struct {
	single *Index
	shards []*Index
	router *Router
}

// buildSharded stands up the same collection twice: once as a single
// unsharded index (the reference answer) and once split over numShards
// shard primaries behind a router.
func buildSharded(t *testing.T, coll *Collection, numShards int, dir string) *shardedFixture {
	t.Helper()
	opts := DefaultOptions()
	opts.WithDistance = true
	opts.Seed = 7

	single, err := Build(coll, opts)
	if err != nil {
		t.Fatal(err)
	}
	m, err := BuildShardMap(coll, numShards, opts)
	if err != nil {
		t.Fatal(err)
	}
	parts := SplitCollection(coll, m)
	shards := make([]*Index, numShards)
	conns := make([]ShardConn, numShards)
	mapPath := ""
	for i, p := range parts {
		if dir != "" {
			shards[i], err = Create(filepath.Join(dir, fmt.Sprintf("shard%d", i)), p, opts)
		} else {
			shards[i], err = Build(p, opts)
		}
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = NewLocalShard(fmt.Sprintf("s%d", i), shards[i])
	}
	if dir != "" {
		mapPath = filepath.Join(dir, "shardmap.json")
	}
	router, err := NewRouter(conns, m, mapPath)
	if err != nil {
		t.Fatal(err)
	}
	f := &shardedFixture{single: single, shards: shards, router: router}
	t.Cleanup(func() {
		for _, s := range f.shards {
			s.Close()
		}
	})
	return f
}

func (f *shardedFixture) compare(t *testing.T, expr string, ranked bool) {
	t.Helper()
	ctx := context.Background()
	var qopts []QueryOption
	if ranked {
		qopts = append(qopts, QueryRanked())
	}
	want, err := f.single.QueryCtx(ctx, expr, qopts...)
	if err != nil {
		t.Fatalf("%s single: %v", expr, err)
	}
	page, err := f.router.Query(ctx, expr, RouterQueryOptions{Ranked: ranked})
	if err != nil {
		t.Fatalf("%s router: %v", expr, err)
	}
	if page.NextToken != "" {
		t.Fatalf("%s: unlimited query returned a resume token", expr)
	}
	diffRows(t, fmt.Sprintf("%s ranked=%v", expr, ranked), routerRows(page.Results), singleRows(f.single, want))
}

// TestRouterEquivalenceStatic: plain and ranked answers from the
// router match a single unsharded index over a citation network, for
// every shard count and a range of expressions (descendant chains,
// child steps, wildcards).
func TestRouterEquivalenceStatic(t *testing.T) {
	coll := WrapCollection(gen.DBLP(gen.DefaultDBLP(48, 11)))
	exprs := []string{
		"//article//author", "//article//cite", "//*//para",
		"//article/title", "//abstract//para", "//inproceedings//author",
	}
	for _, shards := range []int{1, 2, 3, 4} {
		f := buildSharded(t, coll, shards, "")
		if m := f.router.Map(); len(m.CrossLinks) == 0 && shards > 1 {
			t.Fatalf("%d shards: no cross-shard links — fixture exercises nothing", shards)
		}
		for _, expr := range exprs {
			f.compare(t, expr, false)
			f.compare(t, expr, true)
		}
	}
}

// TestRouterCyclicSelfMatch: a //e//e self-match that exists only
// because of a genuine link cycle must survive sharding even when the
// cycle crosses shards.
func TestRouterCyclicSelfMatch(t *testing.T) {
	coll := WrapCollection(gen.Random(gen.RandomConfig{
		Docs: 24, MaxElems: 7, Links: 40, Seed: 5, LinkCycle: true,
	}))
	for _, shards := range []int{2, 3} {
		f := buildSharded(t, coll, shards, "")
		for _, expr := range []string{"//e", "//r//e", "//e//e", "//r//r", "//*//e"} {
			f.compare(t, expr, false)
			f.compare(t, expr, true)
		}
	}
}

// TestRouterPagedEquivalence: the concatenation of router pages walked
// via vector resume tokens equals the single-index answer, plain and
// ranked, for random page sizes.
func TestRouterPagedEquivalence(t *testing.T) {
	coll := WrapCollection(gen.DBLP(gen.DefaultDBLP(40, 13)))
	f := buildSharded(t, coll, 3, "")
	ctx := context.Background()
	rng := rand.New(rand.NewSource(29))
	for _, expr := range []string{"//article//author", "//article//cite"} {
		for _, ranked := range []bool{false, true} {
			var qopts []QueryOption
			if ranked {
				qopts = append(qopts, QueryRanked())
			}
			want, err := f.single.QueryCtx(ctx, expr, qopts...)
			if err != nil {
				t.Fatal(err)
			}
			wantRows := singleRows(f.single, want)
			for trial := 0; trial < 10; trial++ {
				pageSize := 1 + rng.Intn(len(want)/2+1)
				var got []resultRow
				token := ""
				for {
					page, err := f.router.Query(ctx, expr, RouterQueryOptions{
						Ranked: ranked, Limit: pageSize, Resume: token,
					})
					if err != nil {
						t.Fatalf("%s ranked=%v page %d: %v", expr, ranked, len(got)/pageSize, err)
					}
					got = append(got, routerRows(page.Results)...)
					if page.NextToken == "" {
						break
					}
					token = page.NextToken
					if len(got) > len(want) {
						t.Fatalf("%s ranked=%v: page walk overran", expr, ranked)
					}
				}
				diffRows(t, fmt.Sprintf("%s ranked=%v pageSize=%d", expr, ranked, pageSize), got, wantRows)
			}
		}
	}
}

// TestRouterEquivalenceUnderMaintenance mirrors a random write
// workload into both the single index and the router (inserts,
// deletes, link edits — including cross-shard links), checks
// equivalence after every step, and keeps concurrent readers querying
// through the router the whole time so the data path runs under
// -race against live epoch churn.
func TestRouterEquivalenceUnderMaintenance(t *testing.T) {
	coll := WrapCollection(gen.DBLP(gen.DefaultDBLP(30, 17)))
	f := buildSharded(t, coll, 3, "")
	ctx := context.Background()
	rng := rand.New(rand.NewSource(41))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			exprs := []string{"//article//author", "//article//cite"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Concurrent reads must either succeed or fail with the
				// documented transient error — never anything else.
				_, err := f.router.Query(ctx, exprs[(w+i)%len(exprs)], RouterQueryOptions{Ranked: w == 0})
				var su *shardrouter.ShardUnavailableError
				if err != nil && !errors.As(err, &su) {
					t.Errorf("reader %d: %v", w, err)
					return
				}
			}
		}(w)
	}

	names := []string{}
	for n := range f.router.Map().Docs {
		names = append(names, n)
	}
	newDoc := func(i int) (string, []byte) {
		name := fmt.Sprintf("new%03d.xml", i)
		return name, []byte(fmt.Sprintf(
			`<article><title>t%d</title><author>a%d</author><cite href="%s"/></article>`,
			i, i, names[rng.Intn(len(names))]))
	}

	for step := 0; step < 24; step++ {
		switch rng.Intn(4) {
		case 0, 1: // insert a document citing an existing one
			name, xml := newDoc(step)
			if _, err := f.router.InsertXML(ctx, name, xml); err != nil {
				t.Fatalf("step %d router insert: %v", step, err)
			}
			if _, _, err := addXMLToIndex(f.single, name, xml); err != nil {
				t.Fatalf("step %d single insert: %v", step, err)
			}
			names = append(names, name)
		case 2: // add a link between two random docs (maybe cross-shard)
			from := names[rng.Intn(len(names))] + ":0"
			to := names[rng.Intn(len(names))]
			if err := f.router.InsertLink(ctx, from, to); err != nil {
				t.Fatalf("step %d router link: %v", step, err)
			}
			if err := insertLinkBySpec(f.single, from, to); err != nil {
				t.Fatalf("step %d single link: %v", step, err)
			}
		case 3: // delete a document (keep a floor so queries stay non-trivial)
			if len(names) < 20 {
				continue
			}
			i := rng.Intn(len(names))
			name := names[i]
			if err := f.router.DeleteDocument(ctx, name); err != nil {
				t.Fatalf("step %d router delete %s: %v", step, name, err)
			}
			if err := deleteDocByName(f.single, name); err != nil {
				t.Fatalf("step %d single delete %s: %v", step, name, err)
			}
			names = append(names[:i], names[i+1:]...)
		}
		for _, expr := range []string{"//article//author", "//article//cite"} {
			f.compare(t, expr, false)
			f.compare(t, expr, true)
		}
	}
	close(stop)
	wg.Wait()
}

// helpers mirroring router writes onto the single reference index
// through its batch API.

func addXMLToIndex(ix *Index, name string, data []byte) (DocID, []string, error) {
	b := NewBatch()
	if err := b.InsertXML(name, data); err != nil {
		return 0, nil, err
	}
	res, err := ix.Apply(context.Background(), b)
	if err != nil {
		return 0, nil, err
	}
	return res.Results[0].Doc, res.Results[0].Unresolved, nil
}

func insertLinkBySpec(ix *Index, from, to string) error {
	fd, fl, _, err := ParseElementSpec(from)
	if err != nil {
		return err
	}
	td, tl, anchor, err := ParseElementSpec(to)
	if err != nil {
		return err
	}
	b := NewBatch()
	if anchor != "" {
		b.InsertLinkByAnchor(fd, fl, td, anchor)
	} else {
		b.InsertLink(fd, fl, td, tl)
	}
	_, err = ix.Apply(context.Background(), b)
	return err
}

func deleteDocByName(ix *Index, name string) error {
	b := NewBatch()
	b.DeleteDocumentByName(name)
	_, err := ix.Apply(context.Background(), b)
	return err
}

// TestRouterTokenMatrix: the cross-shard resume-token failure modes.
func TestRouterTokenMatrix(t *testing.T) {
	coll := WrapCollection(gen.DBLP(gen.DefaultDBLP(30, 19)))
	dir := t.TempDir()
	f := buildSharded(t, coll, 2, dir)
	ctx := context.Background()

	page, err := f.router.Query(ctx, "//article//author", RouterQueryOptions{Limit: 5})
	if err != nil {
		t.Fatal(err)
	}
	if page.NextToken == "" {
		t.Fatal("expected a resume token past limit 5")
	}
	token := page.NextToken

	// the genuine token resumes
	if _, err := f.router.Query(ctx, "//article//author", RouterQueryOptions{Limit: 5, Resume: token}); err != nil {
		t.Fatalf("genuine resume: %v", err)
	}
	// malformed
	if _, err := f.router.Query(ctx, "//article//author", RouterQueryOptions{Resume: "garbage"}); !errors.Is(err, ErrBadToken) {
		t.Errorf("malformed token: %v, want ErrBadToken", err)
	}
	// wrong query / wrong mode
	if _, err := f.router.Query(ctx, "//article//cite", RouterQueryOptions{Resume: token}); !errors.Is(err, ErrBadToken) {
		t.Errorf("cross-query token: %v, want ErrBadToken", err)
	}
	if _, err := f.router.Query(ctx, "//article//author", RouterQueryOptions{Ranked: true, Resume: token}); !errors.Is(err, ErrBadToken) {
		t.Errorf("cross-mode token: %v, want ErrBadToken", err)
	}
	// wrong scope: a token from a different router (different shard
	// identities) is rejected outright, not misread as staleness
	other := buildSharded(t, coll, 2, "")
	otherPage, err := other.router.Query(ctx, "//article//author", RouterQueryOptions{Limit: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.router.Query(ctx, "//article//author", RouterQueryOptions{Resume: otherPage.NextToken}); !errors.Is(err, ErrBadToken) {
		t.Errorf("wrong-scope token: %v, want ErrBadToken", err)
	}

	// a same-shard write (no map change) retires the token via the
	// shard epoch; durable shards are ahead of the token, so final
	byShard := map[int][]string{}
	for n, e := range f.router.Map().Docs {
		byShard[e.Shard] = append(byShard[e.Shard], n)
	}
	var a, b string
	for _, list := range byShard {
		if len(list) >= 2 {
			a, b = list[0], list[1]
			break
		}
	}
	if a == "" {
		t.Fatal("no shard holds two documents")
	}
	if err := f.router.InsertLink(ctx, a+":0", b); err != nil {
		t.Fatalf("same-shard link insert: %v", err)
	}
	_, err = f.router.Query(ctx, "//article//author", RouterQueryOptions{Resume: token})
	var st *StaleTokenError
	if !errors.As(err, &st) || !errors.Is(err, ErrStaleToken) {
		t.Fatalf("post-write resume: %v, want StaleTokenError", err)
	}
	if st.Retryable {
		t.Fatalf("shard ahead of token must not be retryable: %+v", st)
	}

	// token replay across a full shard-tier restart: WAL replay
	// restores the same sequence epochs, so an outstanding token keeps
	// working against the reopened shards
	fresh, err := f.router.Query(ctx, "//article//author", RouterQueryOptions{Limit: 5})
	if err != nil {
		t.Fatal(err)
	}
	restartTok := fresh.NextToken
	for _, s := range f.shards {
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	conns := make([]ShardConn, len(f.shards))
	for i := range f.shards {
		re, err := Open(filepath.Join(dir, fmt.Sprintf("shard%d", i)), Durable())
		if err != nil {
			t.Fatal(err)
		}
		f.shards[i] = re // fixture cleanup closes the reopened ones
		conns[i] = NewLocalShard(fmt.Sprintf("s%d", i), re)
	}
	m, err := LoadShardMap(filepath.Join(dir, "shardmap.json"))
	if err != nil {
		t.Fatal(err)
	}
	router2, err := NewRouter(conns, m, "")
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := router2.Query(ctx, "//article//author", RouterQueryOptions{Limit: 5, Resume: restartTok})
	if err != nil {
		t.Fatalf("post-restart resume: %v", err)
	}
	if len(resumed.Results) == 0 {
		t.Fatal("post-restart resume returned nothing")
	}
}

// TestRouterCachedVsUncached: the closure cache must be invisible to
// answers. A cache-free router over the same shards and map is the
// reference; a random write workload through the cached router churns
// epochs (stranding cache entries) while concurrent readers keep the
// cached data path hot, so -race sees cache fills, hits, and
// invalidation racing live queries.
func TestRouterCachedVsUncached(t *testing.T) {
	coll := WrapCollection(gen.DBLP(gen.DefaultDBLP(30, 31)))
	f := buildSharded(t, coll, 3, "")
	if len(f.router.Map().CrossLinks) == 0 {
		t.Fatal("fixture has no cross-shard links — cache exercises nothing")
	}
	ctx := context.Background()
	rng := rand.New(rand.NewSource(53))
	exprs := []string{"//article//author", "//article//cite"}

	freshConns := func() []ShardConn {
		conns := make([]ShardConn, len(f.shards))
		for i, s := range f.shards {
			conns[i] = NewLocalShard(fmt.Sprintf("s%d", i), s)
		}
		return conns
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_, err := f.router.Query(ctx, exprs[(w+i)%len(exprs)], RouterQueryOptions{Ranked: w == 0})
				var su *shardrouter.ShardUnavailableError
				if err != nil && !errors.As(err, &su) {
					t.Errorf("reader %d: %v", w, err)
					return
				}
			}
		}(w)
	}

	names := []string{}
	for n := range f.router.Map().Docs {
		names = append(names, n)
	}
	sort.Strings(names)

	for step := 0; step < 12; step++ {
		switch rng.Intn(3) {
		case 0, 1: // insert a document citing an existing one
			name := fmt.Sprintf("cvu%03d.xml", step)
			xml := []byte(fmt.Sprintf(
				`<article><title>t%d</title><author>a%d</author><cite href=%q/></article>`,
				step, step, names[rng.Intn(len(names))]))
			if _, err := f.router.InsertXML(ctx, name, xml); err != nil {
				t.Fatalf("step %d insert: %v", step, err)
			}
			names = append(names, name)
		case 2: // add a link (maybe cross-shard)
			from := names[rng.Intn(len(names))] + ":0"
			to := names[rng.Intn(len(names))]
			if err := f.router.InsertLink(ctx, from, to); err != nil {
				t.Fatalf("step %d link: %v", step, err)
			}
		}
		uncached, err := NewRouter(freshConns(), f.router.Map(), "", RouterClosureCacheSize(0))
		if err != nil {
			t.Fatal(err)
		}
		for _, expr := range exprs {
			for _, ranked := range []bool{false, true} {
				want, err := uncached.Query(ctx, expr, RouterQueryOptions{Ranked: ranked})
				if err != nil {
					t.Fatalf("step %d %s uncached: %v", step, expr, err)
				}
				got, err := f.router.Query(ctx, expr, RouterQueryOptions{Ranked: ranked})
				if err != nil {
					t.Fatalf("step %d %s cached: %v", step, expr, err)
				}
				diffRows(t, fmt.Sprintf("step %d %s ranked=%v", step, expr, ranked),
					routerRows(got.Results), routerRows(want.Results))
			}
		}
	}
	close(stop)
	wg.Wait()

	if ctr := f.router.Unwrap().Counters(); ctr.ClosureCacheHits == 0 {
		t.Error("cached router recorded no closure cache hits over the whole run")
	}
}

// TestRouterClosureCacheCounters: a repeated identical query against a
// quiescent cut must be served from the closure cache, and the
// counters must surface through Status (the /stats payload) under
// their exact JSON names.
func TestRouterClosureCacheCounters(t *testing.T) {
	coll := WrapCollection(gen.DBLP(gen.DefaultDBLP(36, 37)))
	f := buildSharded(t, coll, 2, "")
	if len(f.router.Map().CrossLinks) == 0 {
		t.Fatal("fixture has no cross-shard links")
	}
	ctx := context.Background()
	r := f.router.Unwrap()

	if _, err := f.router.Query(ctx, "//article//cite", RouterQueryOptions{Ranked: true}); err != nil {
		t.Fatal(err)
	}
	first := r.Counters()
	if first.StepRPCs == 0 {
		t.Error("first query counted no step RPCs")
	}
	if first.ClosureCacheMisses == 0 {
		t.Error("cold query counted no closure cache misses")
	}

	if _, err := f.router.Query(ctx, "//article//cite", RouterQueryOptions{Ranked: true}); err != nil {
		t.Fatal(err)
	}
	second := r.Counters()
	if second.ClosureCacheHits <= first.ClosureCacheHits {
		t.Errorf("second identical query did not hit the cache:\nfirst  %+v\nsecond %+v", first, second)
	}

	// a write advances the owning shard's epoch; the next query must
	// miss (stranded entries), never serve the stale cut
	names := make([]string, 0, len(f.router.Map().Docs))
	for n := range f.router.Map().Docs {
		names = append(names, n)
	}
	sort.Strings(names)
	if err := f.router.InsertLink(ctx, names[0]+":0", names[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := f.router.Query(ctx, "//article//cite", RouterQueryOptions{Ranked: true}); err != nil {
		t.Fatal(err)
	}
	third := r.Counters()
	if third.ClosureCacheMisses <= second.ClosureCacheMisses {
		t.Errorf("post-write query did not miss the cache:\nsecond %+v\nthird  %+v", second, third)
	}

	// the counters ride /stats verbatim
	blob, err := json.Marshal(f.router.Status(ctx))
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"closureCacheHits", "closureCacheMisses", "closureCacheEvictions",
		"stepRPCs", "deliverRPCs", "wireBytesIn", "wireBytesOut",
	} {
		if !strings.Contains(string(blob), `"`+key+`"`) {
			t.Errorf("status JSON missing %q: %s", key, blob)
		}
	}
}

// TestRouterRetryableStaleOnLaggingShard: a shard restored behind the
// token's sequence epoch (a lagging replica or a shard mid-replay)
// yields a RETRYABLE stale error — the serving tier's cue for 503 +
// Retry-After rather than a final 400.
func TestRouterRetryableStaleOnLaggingShard(t *testing.T) {
	coll := WrapCollection(gen.DBLP(gen.DefaultDBLP(24, 23)))
	dir := t.TempDir()
	opts := DefaultOptions()
	opts.WithDistance = true
	opts.Seed = 7
	m, err := BuildShardMap(coll, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	parts := SplitCollection(coll, m)
	paths := make([]string, 2)
	for i, p := range parts {
		paths[i] = filepath.Join(dir, fmt.Sprintf("shard%d", i))
		ix, err := Create(paths[i], p, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := ix.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// snapshot shard 0's on-disk state (the path is a file-set prefix)
	// before any writes
	oldDir := filepath.Join(dir, "old")
	oldCopy := filepath.Join(oldDir, "shard0")
	if out, err := exec.Command("sh", "-c",
		fmt.Sprintf("mkdir -p %s && cp %s* %s/", oldDir, paths[0], oldDir)).CombinedOutput(); err != nil {
		t.Fatalf("cp: %v: %s", err, out)
	}

	open := func(path string) *Index {
		t.Helper()
		ix, err := Open(path, Durable())
		if err != nil {
			t.Fatal(err)
		}
		return ix
	}
	shard0, shard1 := open(paths[0]), open(paths[1])
	router, err := NewRouter([]ShardConn{
		NewLocalShard("s0", shard0), NewLocalShard("s1", shard1),
	}, m, "")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// advance shard 0 past the old copy with a same-shard write
	var s0docs []string
	for n, e := range m.Docs {
		if e.Shard == 0 {
			s0docs = append(s0docs, n)
		}
	}
	if len(s0docs) < 2 {
		t.Fatal("shard 0 holds fewer than two documents")
	}
	sort.Strings(s0docs)
	if err := router.InsertLink(ctx, s0docs[0]+":0", s0docs[1]); err != nil {
		t.Fatal(err)
	}
	page, err := router.Query(ctx, "//article//author", RouterQueryOptions{Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if page.NextToken == "" {
		t.Fatal("expected a resume token")
	}
	shard0.Close()
	shard1.Close()

	// restart with shard 0 rolled back to the pre-write state
	lag0, fresh1 := open(oldCopy), open(paths[1])
	defer lag0.Close()
	defer fresh1.Close()
	router2, err := NewRouter([]ShardConn{
		NewLocalShard("s0", lag0), NewLocalShard("s1", fresh1),
	}, m, "")
	if err != nil {
		t.Fatal(err)
	}
	_, err = router2.Query(ctx, "//article//author", RouterQueryOptions{Resume: page.NextToken})
	var st *StaleTokenError
	if !errors.As(err, &st) {
		t.Fatalf("lagging-shard resume: %v, want StaleTokenError", err)
	}
	if !st.Retryable {
		t.Fatalf("shard behind a sequence-epoch token must be retryable: %+v", st)
	}
}
