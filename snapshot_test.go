package hopi

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestSnapshotImmutableUnderApply checks the core snapshot contract: a
// snapshot taken before a maintenance batch keeps answering from the
// old state while a fresh snapshot sees the new one.
func TestSnapshotImmutableUnderApply(t *testing.T) {
	ix := demoIndex(t, false)
	before := ix.Snapshot()
	beforeDocs := before.Collection().NumDocs()
	beforeRes, err := before.Query("//bib//author")
	if err != nil {
		t.Fatal(err)
	}

	b := NewBatch()
	nd := NewDocument("d.xml", "bib")
	nd.AddElement(nd.Root(), "author")
	cite := nd.AddElement(nd.Root(), "cite")
	b.InsertDocument(nd)
	b.InsertLink("d.xml", cite, "a.xml", 0)
	if _, err := ix.Apply(context.Background(), b); err != nil {
		t.Fatal(err)
	}

	if got := before.Collection().NumDocs(); got != beforeDocs {
		t.Errorf("old snapshot's collection changed: %d -> %d docs", beforeDocs, got)
	}
	again, err := before.Query("//bib//author")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(beforeRes, again) {
		t.Error("old snapshot's query results changed after Apply")
	}

	after := ix.Snapshot()
	if after == before {
		t.Fatal("Apply did not publish a new snapshot")
	}
	if got := after.Collection().NumDocs(); got != beforeDocs+1 {
		t.Errorf("new snapshot has %d docs, want %d", got, beforeDocs+1)
	}
	afterRes, err := after.Query("//bib//author")
	if err != nil {
		t.Fatal(err)
	}
	if len(afterRes) != len(beforeRes)+1 {
		t.Errorf("new snapshot: %d authors, want %d", len(afterRes), len(beforeRes)+1)
	}
	// The snapshot cache must be reused while no batch applies.
	if ix.Snapshot() != after {
		t.Error("snapshot not cached between batches")
	}
}

// TestConcurrentSnapshotQueriesWithApply overlaps ≥4 concurrent
// snapshot readers with ≥20 applied maintenance batches (run with
// -race). Each reader asserts that results stay internally consistent
// within one snapshot: evaluating the same expression twice yields
// identical results, and every reported match is reachable from some
// document root of its snapshot's collection.
func TestConcurrentSnapshotQueriesWithApply(t *testing.T) {
	ix := demoIndex(t, false)

	const (
		readers = 6
		batches = 30
	)
	var (
		wg      sync.WaitGroup
		stop    atomic.Bool
		applied atomic.Int64
	)
	errc := make(chan error, readers+1)

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for !stop.Load() {
				snap := ix.Snapshot()
				res1, err := snap.Query("//bib//author")
				if err != nil {
					errc <- err
					return
				}
				res2, err := snap.Query("//bib//author")
				if err != nil {
					errc <- err
					return
				}
				if !reflect.DeepEqual(res1, res2) {
					errc <- fmt.Errorf("reader %d: same snapshot, different results: %v vs %v", r, res1, res2)
					return
				}
				coll := snap.Collection()
				for _, m := range res1 {
					doc, ok := coll.DocByName(m.Doc)
					if !ok {
						errc <- fmt.Errorf("reader %d: result doc %q missing from snapshot collection", r, m.Doc)
						return
					}
					if !snap.Reaches(coll.ElemID(doc, 0), m.Element) {
						errc <- fmt.Errorf("reader %d: match %d not reachable from its document root", r, m.Element)
						return
					}
				}
			}
		}(r)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		var inserted []string
		for i := 0; i < batches; i++ {
			b := NewBatch()
			name := fmt.Sprintf("churn%03d.xml", i)
			nd := NewDocument(name, "bib")
			nd.AddElement(nd.Root(), "author")
			cite := nd.AddElement(nd.Root(), "cite")
			b.InsertDocument(nd)
			b.InsertLink(name, cite, "a.xml", 0)
			if len(inserted) > 3 && i%3 == 0 {
				b.DeleteDocumentByName(inserted[0])
				inserted = inserted[1:]
			}
			if _, err := ix.Apply(context.Background(), b); err != nil {
				errc <- err
				return
			}
			inserted = append(inserted, name)
			applied.Add(1)
		}
	}()

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if got := applied.Load(); got < 20 {
		t.Fatalf("only %d batches applied, want >= 20", got)
	}
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestApplyCancelledContext checks that a cancelled context stops the
// batch before the first operation and surfaces the context error.
func TestApplyCancelledContext(t *testing.T) {
	ix := demoIndex(t, false)
	before := ix.Snapshot()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b := NewBatch()
	nd := NewDocument("late.xml", "bib")
	b.InsertDocument(nd)
	res, err := ix.Apply(ctx, b)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Apply with cancelled ctx: err = %v, want context.Canceled", err)
	}
	if len(res.Results) != 0 {
		t.Fatalf("cancelled Apply reported %d applied ops", len(res.Results))
	}
	if ix.Snapshot() != before {
		t.Error("cancelled Apply invalidated the snapshot")
	}
}

// TestApplyStopsAtFailingOp checks fail-stop semantics: the failing
// op's index is reported, the applied prefix is visible, the suffix is
// not.
func TestApplyStopsAtFailingOp(t *testing.T) {
	ix := demoIndex(t, false)
	b := NewBatch()
	nd := NewDocument("p.xml", "bib")
	nd.AddElement(nd.Root(), "author")
	b.InsertDocument(nd)                  // op 0: fine
	b.DeleteDocumentByName("no-such.xml") // op 1: fails
	b.InsertLink("p.xml", 0, "a.xml", 0)  // op 2: must not run
	res, err := ix.Apply(context.Background(), b)
	if err == nil || !strings.Contains(err.Error(), "op 1") {
		t.Fatalf("err = %v, want failure at op 1", err)
	}
	if len(res.Results) != 1 {
		t.Fatalf("applied %d ops before the failure, want 1", len(res.Results))
	}
	snap := ix.Snapshot()
	if _, ok := snap.Collection().DocByName("p.xml"); !ok {
		t.Error("applied prefix (insert p.xml) not visible")
	}
	if snap.Collection().NumLinks() != ix.Collection().NumLinks() {
		t.Error("snapshot and live state disagree after failed batch")
	}
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestApplyRejectsDuplicateName checks that inserting a second live
// document under an existing name fails instead of shadowing and
// orphaning the first.
func TestApplyRejectsDuplicateName(t *testing.T) {
	ix := demoIndex(t, false)
	b := NewBatch()
	b.InsertDocument(NewDocument("a.xml", "bib"))
	if _, err := ix.Apply(context.Background(), b); err == nil || !strings.Contains(err.Error(), "already exists") {
		t.Fatalf("duplicate insert: err = %v, want already-exists", err)
	}
	// After deleting the original, the name is free again.
	b = NewBatch()
	b.DeleteDocumentByName("a.xml")
	b.InsertDocument(NewDocument("a.xml", "bib"))
	if _, err := ix.Apply(context.Background(), b); err != nil {
		t.Fatal(err)
	}
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestModifyRejectsNameCollision checks that replacing a document may
// keep its own name but must not take over another live document's.
func TestModifyRejectsNameCollision(t *testing.T) {
	ix := demoIndex(t, false)
	coll := ix.Collection()
	a, _ := coll.DocByName("a.xml")

	// Renaming a.xml's replacement to b.xml must fail: b.xml is live.
	b := NewBatch()
	b.ModifyDocument(a, NewDocument("b.xml", "bib"))
	if _, err := ix.Apply(context.Background(), b); err == nil || !strings.Contains(err.Error(), "already exists") {
		t.Fatalf("modify onto live name: err = %v, want already-exists", err)
	}

	// Keeping the original name is the normal case and must work.
	b = NewBatch()
	nd := NewDocument("a.xml", "bib")
	nd.AddElement(nd.Root(), "book")
	b.ModifyDocument(a, nd)
	res, err := ix.Apply(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ix.Snapshot().Collection().DocByName("a.xml"); !ok {
		t.Error("a.xml missing after in-place modify")
	}
	if len(res.Docs()) != 1 {
		t.Errorf("modify result docs: %v", res.Docs())
	}
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestApplyRejectsOutOfRangeLink checks local-index bounds on
// name-based link endpoints; without them an out-of-range global ID
// would poison the element graph.
func TestApplyRejectsOutOfRangeLink(t *testing.T) {
	ix := demoIndex(t, false)
	for _, tc := range [][2]int32{{99, 0}, {0, 99}, {-1, 0}} {
		b := NewBatch()
		b.InsertLink("a.xml", tc[0], "b.xml", tc[1])
		if _, err := ix.Apply(context.Background(), b); err == nil || !strings.Contains(err.Error(), "out of range") {
			t.Errorf("InsertLink(%d,%d): err = %v, want out-of-range", tc[0], tc[1], err)
		}
	}
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestBatchInsertXML exercises XML insertion through a batch including
// link resolution and the unresolved-target report.
func TestBatchInsertXML(t *testing.T) {
	ix := demoIndex(t, false)
	b := NewBatch()
	if err := b.InsertXML("d.xml", []byte(`<bib><cite href="a.xml"/><cite href="gone.xml"/></bib>`)); err != nil {
		t.Fatal(err)
	}
	res, err := ix.Apply(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	op := res.Results[0]
	if len(op.Unresolved) != 1 || op.Unresolved[0] != "gone.xml#" {
		t.Errorf("unresolved = %v, want [gone.xml#]", op.Unresolved)
	}
	snap := ix.Snapshot()
	coll := snap.Collection()
	d, ok := coll.DocByName("d.xml")
	if !ok {
		t.Fatal("d.xml not inserted")
	}
	a, _ := coll.DocByName("a.xml")
	if !snap.Reaches(coll.ElemID(d, 0), coll.ElemID(a, 0)) {
		t.Error("resolved link d.xml -> a.xml missing")
	}
	if err := b.InsertXML("bad.xml", []byte(`<unclosed`)); err == nil {
		t.Error("malformed XML accepted")
	}
}

// TestQueryLimit checks result truncation for ranked and unranked
// queries.
func TestQueryLimit(t *testing.T) {
	ix := demoIndex(t, true)
	snap := ix.Snapshot()

	full, err := snap.QueryCtx(context.Background(), "//author")
	if err != nil {
		t.Fatal(err)
	}
	if len(full) < 3 {
		t.Fatalf("demo collection should have >= 3 authors, got %d", len(full))
	}
	for _, limit := range []int{1, 2} {
		res, err := snap.QueryCtx(context.Background(), "//author", QueryLimit(limit))
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != limit {
			t.Errorf("QueryLimit(%d): got %d results", limit, len(res))
		}
		if !reflect.DeepEqual(res, full[:limit]) {
			t.Errorf("QueryLimit(%d) returned a different prefix", limit)
		}
	}
	// Limit larger than the result set and non-positive limits are
	// no-ops.
	for _, limit := range []int{len(full) + 5, 0, -1} {
		res, err := snap.QueryCtx(context.Background(), "//author", QueryLimit(limit))
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != len(full) {
			t.Errorf("QueryLimit(%d): got %d results, want %d", limit, len(res), len(full))
		}
	}
	// Ranked: the limit keeps the best-scoring matches.
	ranked, err := snap.QueryCtx(context.Background(), "//bib//author", QueryRanked(), QueryLimit(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 1 || ranked[0].Score <= 0 {
		t.Errorf("ranked+limit: %+v", ranked)
	}
}

// TestQueryCtxCancelled checks that a cancelled context aborts
// evaluation with its error.
func TestQueryCtxCancelled(t *testing.T) {
	ix := demoIndex(t, true)
	snap := ix.Snapshot()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := snap.QueryCtx(ctx, "//bib//author"); !errors.Is(err, context.Canceled) {
		t.Errorf("unranked: err = %v, want context.Canceled", err)
	}
	if _, err := snap.QueryCtx(ctx, "//bib//author", QueryRanked()); !errors.Is(err, context.Canceled) {
		t.Errorf("ranked: err = %v, want context.Canceled", err)
	}
}

// TestResolveElement covers the textual element addressing used by the
// cmd tools and hopiserve.
func TestResolveElement(t *testing.T) {
	ix := demoIndex(t, false)
	coll := ix.Collection()
	c, _ := coll.DocByName("c.xml")

	id, err := coll.ResolveElement("c.xml#sec")
	if err != nil {
		t.Fatal(err)
	}
	if id != coll.ElemID(c, 1) {
		t.Errorf("anchor resolution: got %d, want %d", id, coll.ElemID(c, 1))
	}
	if id, err := coll.ResolveElement("c.xml:2"); err != nil || coll.Tag(id) != "author" {
		t.Errorf("local-index resolution: id %d err %v", id, err)
	}
	if id, err := coll.ResolveElement("c.xml"); err != nil || id != coll.ElemID(c, 0) {
		t.Errorf("root resolution: id %d err %v", id, err)
	}
	for _, bad := range []string{"nope.xml", "c.xml#missing", "c.xml:99", "c.xml:x", ""} {
		if _, err := coll.ResolveElement(bad); err == nil {
			t.Errorf("ResolveElement(%q) accepted", bad)
		}
	}
}
