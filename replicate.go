package hopi

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"time"

	"hopi/internal/core"
	"hopi/internal/replication"
	"hopi/internal/segment"
	"hopi/internal/twohop"
	"hopi/internal/xmlmodel"
)

// Replication
//
// A durable primary ships its committed WAL batches to read-only
// followers over HTTP: StartPublisher attaches a log-shipping
// publisher to the index's commit path and exposes the stream as an
// http.Handler (mount it at GET /repl/stream); Follow dials that
// endpoint and returns a read-only *Index that bootstraps from a full
// state image, replays each committed batch as it arrives, and
// republishes a fresh snapshot per batch. Sequence numbers on the wire
// are the primary's durable WAL batch sequences, and follower epochs
// equal their applied sequence — so a resume token issued by one
// replica resumes on any other replica that has applied the same
// batch (see Snapshot.Epoch and StaleTokenError).

// ErrReadOnlyReplica is returned by maintenance entry points of a
// follower index (Follow): all state changes arrive over the
// replication stream; writes go to the primary.
var ErrReadOnlyReplica = errors.New("hopi: read-only replica")

// --- primary side -----------------------------------------------------

// Publisher streams a durable index's committed batches to followers.
// It implements http.Handler for the log-shipping endpoint
// (GET /repl/stream?from=<seq>, NDJSON frames). Obtain one with
// Index.StartPublisher.
type Publisher struct {
	p *replication.Publisher
}

// PublishOption configures StartPublisher.
type PublishOption func(*replication.PublisherOptions)

// PublishTail bounds the in-memory batch tail retained for connected
// followers (default 1024 batches). Followers lagging past it are
// served from the WAL, or re-bootstrapped from a snapshot image.
func PublishTail(batches int) PublishOption {
	return func(o *replication.PublisherOptions) { o.TailBatches = batches }
}

// PublishHeartbeat sets the idle-stream heartbeat interval (default
// 3s). Heartbeats carry the primary's committed sequence, from which
// followers compute their replication lag.
func PublishHeartbeat(d time.Duration) PublishOption {
	return func(o *replication.PublisherOptions) { o.Heartbeat = d }
}

// StartPublisher attaches a log-shipping publisher to a durable index:
// from now on every batch committed by Apply is also handed to the
// publisher, which retains a bounded in-memory tail and serves
// follower streams. Lagging followers are fed from the WAL file; when
// a checkpoint has truncated the batches they need, they are reset
// with a full snapshot image. The index must be durable (Create, or
// Open with Durable) — the wire sequence numbers are the WAL's.
func (ix *Index) StartPublisher(opts ...PublishOption) (*Publisher, error) {
	var po replication.PublisherOptions
	for _, o := range opts {
		o(&po)
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.readOnly {
		return nil, errors.New("hopi: a follower cannot publish (chain replication is not supported)")
	}
	if ix.dur == nil {
		return nil, errors.New("hopi: replication requires a durable index (Create, or Open with Durable)")
	}
	if ix.pub != nil {
		return nil, errors.New("hopi: publisher already started")
	}
	p := replication.NewPublisher(&replSource{ix: ix}, ix.dur.nextSeq-1, po)
	ix.pub = p
	return &Publisher{p: p}, nil
}

// ServeHTTP serves one follower stream; mount the publisher at
// GET /repl/stream.
func (p *Publisher) ServeHTTP(w http.ResponseWriter, r *http.Request) { p.p.ServeHTTP(w, r) }

// LastSeq returns the last committed batch sequence the publisher has
// seen.
func (p *Publisher) LastSeq() uint64 { return p.p.LastSeq() }

// ActiveStreams returns the number of currently connected follower
// streams.
func (p *Publisher) ActiveStreams() int64 { return p.p.ActiveStreams() }

// Shipped returns the total number of batch frames written to
// followers.
func (p *Publisher) Shipped() uint64 { return p.p.Shipped() }

// Close terminates the follower streams. The index itself stays
// usable; Index.Close also closes an attached publisher.
func (p *Publisher) Close() { p.p.Close() }

// replSource adapts the index to the publisher's Source interface.
// Both methods read under the index's read lock, so the images and WAL
// reads they produce are consistent points of the commit history.
type replSource struct {
	ix *Index
}

func (s *replSource) Image() (*replication.Image, error) {
	ix := s.ix
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	d := ix.dur
	if d == nil {
		return nil, errors.New("hopi: publisher detached from its store")
	}
	seq := d.nextSeq - 1
	var buf bytes.Buffer
	if err := ix.coll.c.EncodeWithMeta(&buf, seq, ix.scope); err != nil {
		return nil, err
	}
	cover := ix.ix.Cover()
	if d.segs != nil && cover.Seg() {
		// Segmented primary: ship the sealed segment files verbatim plus
		// the unsealed in-memory delta as a replayable op tail. The lock
		// is held only for the collection encode and the O(delta)
		// flattening — the label payload is the mmap'd bytes themselves,
		// captured by reference here and serialized by the stream writer
		// after the lock is released. Compaction may unlink the files
		// meanwhile; the pinned mappings keep the bytes alive.
		st := d.segs.Current()
		_, n, withDist, live, files, err := d.segs.ImageFiles(st)
		if err != nil {
			return nil, err
		}
		segFiles := make([]replication.SegFile, len(files))
		for i, f := range files {
			segFiles[i] = replication.SegFile{Name: f.Name, Data: f.Data}
		}
		return &replication.Image{
			Seq:      seq,
			Scope:    ix.scope,
			WithDist: withDist,
			Coll:     buf.Bytes(),
			Ops:      cover.DeltaOps(),
			N:        n,
			Live:     live,
			Files:    segFiles,
		}, nil
	}
	return &replication.Image{
		Seq:      seq,
		Scope:    ix.scope,
		WithDist: cover.WithDist,
		Coll:     buf.Bytes(),
		Ops:      cover.SnapshotDeltas(),
	}, nil
}

func (s *replSource) WALTail(from uint64) ([]replication.Batch, bool, error) {
	ix := s.ix
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if ix.dur == nil {
		return nil, false, nil
	}
	recs, ok, err := ix.dur.wal.BatchesFrom(from)
	if err != nil || !ok {
		return nil, false, err
	}
	out := make([]replication.Batch, len(recs))
	for i, r := range recs {
		out[i] = replication.Batch{Seq: r.Seq, Coll: r.Coll, Ops: r.Ops}
	}
	return out, true, nil
}

// --- follower side ----------------------------------------------------

type followConfig struct {
	timeout time.Duration
	dir     string
	fo      replication.FollowerOptions
}

// FollowOption configures Follow.
type FollowOption func(*followConfig)

// FollowTimeout bounds how long Follow waits for the initial bootstrap
// image before giving up (default 30s).
func FollowTimeout(d time.Duration) FollowOption {
	return func(c *followConfig) { c.timeout = d }
}

// FollowDir sets the directory under which a follower materializes
// segment stores shipped by a segmented primary (one fresh
// subdirectory per bootstrap). Defaults to the system temp directory;
// the follower removes its subdirectories on Close.
func FollowDir(dir string) FollowOption {
	return func(c *followConfig) { c.dir = dir }
}

// FollowClient sets the HTTP client used for the replication stream.
// The stream is long-lived; the client must not set an overall request
// timeout.
func FollowClient(client *http.Client) FollowOption {
	return func(c *followConfig) { c.fo.Client = client }
}

// FollowReconnect bounds the reconnect backoff after a dropped stream
// (defaults 100ms / 5s).
func FollowReconnect(min, max time.Duration) FollowOption {
	return func(c *followConfig) { c.fo.BackoffMin, c.fo.BackoffMax = min, max }
}

// Follow connects to a primary's replication endpoint (the URL the
// primary's Publisher is mounted at, e.g.
// "http://primary:8080/repl/stream") and returns a read-only replica
// Index: it bootstraps from the primary's state image, then replays
// every committed batch as it is shipped, publishing a fresh snapshot
// per batch. Queries, cursors, and EXPLAIN work exactly as on any
// index; Apply (and the per-op maintenance wrappers) fail with
// ErrReadOnlyReplica. The follower reconnects with backoff after a
// dropped stream and resumes from its last applied sequence;
// ReplicaStatus reports its position and lag. Close stops replication.
//
// Follow blocks until the initial bootstrap completes (FollowTimeout).
func Follow(url string, opts ...FollowOption) (*Index, error) {
	cfg := followConfig{timeout: 30 * time.Second}
	for _, o := range opts {
		o(&cfg)
	}
	ix := &Index{readOnly: true, seqEpoch: true}
	f := replication.NewFollower(url, &replTarget{ix: ix, dir: cfg.dir}, cfg.fo)
	ix.fol = f
	f.Start()
	ctx, cancel := context.WithTimeout(context.Background(), cfg.timeout)
	defer cancel()
	if err := f.WaitReady(ctx); err != nil {
		st := f.Status()
		f.Stop()
		if st.LastError != "" {
			return nil, fmt.Errorf("hopi: follow %s: %w (last stream error: %s)", url, err, st.LastError)
		}
		return nil, fmt.Errorf("hopi: follow %s: %w", url, err)
	}
	return ix, nil
}

// replTarget adapts the index to the follower's Target interface. The
// follower calls from a single goroutine; each call takes the write
// lock, so replays serialize with readers exactly like Apply does on a
// primary.
type replTarget struct {
	ix    *Index
	dir   string         // base directory for adopted segment stores
	store *segment.Store // adopted sealed store, nil for flat bootstraps
}

func (t *replTarget) Bootstrap(img *replication.Image) error {
	c, _, err := xmlmodel.DecodeCollectionSeq(bytes.NewReader(img.Coll))
	if err != nil {
		return err
	}
	var (
		cover *twohop.Cover
		store *segment.Store
		clean func()
	)
	if len(img.Files) > 0 {
		// Segmented primary: materialize the shipped files as a local
		// store and adopt them by mmap — no label is re-encoded on
		// either side. The residual Ops tail (the primary's unsealed
		// delta) replays on top, bringing the cover to img.Seq.
		dir, err := os.MkdirTemp(t.dir, "hopi-follower-*")
		if err != nil {
			return err
		}
		files := make([]segment.NamedFile, len(img.Files))
		for i, f := range img.Files {
			files[i] = segment.NamedFile{Name: f.Name, Data: f.Data}
		}
		store, err = segment.InstallStore(dir, img.Seq, img.N, img.WithDist, img.Live, files, segment.Options{})
		if err != nil {
			os.RemoveAll(dir)
			return err
		}
		cover = &twohop.Cover{WithDist: img.WithDist}
		cover.AdoptBase(twohop.NewBase(store.Current()), img.N, int(img.Live))
		cover.Apply(img.Ops)
		clean = func() { os.RemoveAll(dir) }
	} else {
		cover = twohop.NewCover(c.NumAllocatedIDs(), img.WithDist)
		cover.Apply(img.Ops)
	}
	cix := core.NewFromCover(c, cover)
	ix := t.ix
	ix.mu.Lock()
	oldClean := ix.folClean
	ix.coll = &Collection{c: c}
	ix.ix = cix
	ix.scope = img.Scope // adopt the primary's replication scope
	ix.epoch.Store(img.Seq)
	ix.cur.Store(nil)
	ix.folClean = clean
	t.store = store
	// A (re-)bootstrap replaces the whole state: live-query sessions
	// cannot be diffed incrementally across it.
	if ws := ix.watch.Load(); ws != nil {
		ws.observe(img.Seq, core.WatchDelta{Full: true})
	}
	ix.mu.Unlock()
	if oldClean != nil {
		// a re-bootstrap (lag reset) replaced an earlier adopted store;
		// snapshots still reading it hold the unlinked bytes via mmap
		oldClean()
	}
	ix.Snapshot() // publish eagerly so the first reader pays no clone
	if ws := ix.watch.Load(); ws != nil {
		ws.signal()
	}
	return nil
}

func (t *replTarget) ApplyBatch(b replication.Batch) error {
	ops, err := core.DecodeCollOps(b.Coll)
	if err != nil {
		return err
	}
	ix := t.ix
	ix.mu.Lock()
	if err := ix.ix.ApplyLogged(ops, b.Ops); err != nil {
		ix.mu.Unlock()
		return err
	}
	ix.epoch.Store(b.Seq)
	// Retire the previous snapshot; the fresh one is built on Quiesce
	// (once per burst) or by the first reader, whichever comes first —
	// cloning per batch would let a write storm outrun the replay.
	ix.cur.Store(nil)
	// Feed live-query sessions the batch summary; the notifier wake-up
	// is deferred to Quiesce so a buffered burst fans out as one round.
	if ws := ix.watch.Load(); ws != nil {
		ws.observe(b.Seq, ix.ix.Summarize(&core.ChangeLog{Coll: ops, Cover: b.Ops}))
	}
	// On an adopted segment store, periodically seal the replay delta
	// so a long-lived follower's memory stays bounded like the
	// primary's. Sealing is local bookkeeping — it never changes the
	// served labels — so a failure only stops further sealing.
	var compact *segment.Store
	if st := t.store; st != nil {
		cov := ix.ix.Cover()
		if cov.Seg() && cov.DeltaEntries() >= defaultSegmentThreshold {
			if stk, err := st.Seal(b.Seq, cov.N(), int64(cov.Size()), cov.DeltaRecords()); err == nil {
				ix.ix.SealSwapBase(twohop.NewBase(stk))
				if st.NeedsCompaction() {
					compact = st
				}
			} else {
				t.store = nil // e.g. disk full: fall back to a growing delta
			}
		}
	}
	ix.mu.Unlock()
	if compact != nil {
		compact.Compact() // outside the lock; readers keep their pinned stacks
	}
	return nil
}

func (t *replTarget) Quiesce() {
	t.ix.Snapshot() // republish off the request path once the burst ends
	if ws := t.ix.watch.Load(); ws != nil {
		ws.signal() // one notifier round per buffered burst
	}
}

// --- status -----------------------------------------------------------

// ReplicaStatus describes an index's role in a replication topology.
type ReplicaStatus struct {
	// Role is "primary" (publisher attached), "replica" (created by
	// Follow), or "standalone".
	Role string
	// AppliedSeq is the durable batch sequence the served state
	// reflects: the committed WAL sequence on a primary, the last
	// replayed sequence on a replica.
	AppliedSeq uint64
	// PrimarySeq is the primary's committed sequence as last observed
	// (equal to AppliedSeq on the primary itself).
	PrimarySeq uint64
	// Lag is PrimarySeq - AppliedSeq: how many committed batches the
	// served state is behind, 0 when caught up.
	Lag uint64
	// Connected reports, on a replica, whether the stream to the
	// primary is currently open.
	Connected bool
	// PrimaryURL is, on a replica, the stream endpoint it follows.
	PrimaryURL string
	// LastContact is, on a replica, the arrival time of the most
	// recent frame (zero when never connected).
	LastContact time.Time
	// FollowerStreams is, on a primary, the number of currently
	// connected follower streams.
	FollowerStreams int64
}

// ReplicaStatus reports the index's replication role and position.
// Safe to call concurrently with everything else.
func (ix *Index) ReplicaStatus() ReplicaStatus {
	ix.mu.RLock()
	fol, pub, dur := ix.fol, ix.pub, ix.dur
	var seq uint64
	if dur != nil {
		seq = ix.dur.nextSeq - 1
	}
	ix.mu.RUnlock()
	switch {
	case fol != nil:
		st := fol.Status()
		return ReplicaStatus{
			Role:        "replica",
			AppliedSeq:  st.AppliedSeq,
			PrimarySeq:  st.PrimarySeq,
			Lag:         st.Lag(),
			Connected:   st.Connected,
			PrimaryURL:  fol.URL(),
			LastContact: st.LastContact,
		}
	case pub != nil:
		return ReplicaStatus{
			Role:            "primary",
			AppliedSeq:      seq,
			PrimarySeq:      seq,
			FollowerStreams: pub.ActiveStreams(),
		}
	default:
		return ReplicaStatus{Role: "standalone", AppliedSeq: seq, PrimarySeq: seq}
	}
}
