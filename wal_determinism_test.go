package hopi

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"hopi/internal/core"
	"hopi/internal/storage"
	"hopi/internal/xmlmodel"
)

// TestDiffModifyWALByteStable encodes the ChangeLog of the same
// logical DiffModify batch twice, through the real WAL framing, and
// asserts the on-disk bytes are identical: the deterministic diff
// order guarantees byte-stable WALs (and therefore byte-identical
// replicas / replay streams) for identical inputs.
func TestDiffModifyWALByteStable(t *testing.T) {
	runOnce := func(path string) []byte {
		c := xmlmodel.NewCollection()
		d := xmlmodel.NewDocument("big.xml", "pub")
		for i := 0; i < 12; i++ {
			d.AddElement(0, "sec")
		}
		for i := int32(1); i <= 6; i++ {
			d.AddIntraLink(i, i+1)
		}
		c.AddDocument(d)
		ix, err := core.Build(c, core.Options{Partitioner: core.PartSingle, Join: core.JoinNewHBar, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		nd := d.Clone()
		nd.IntraLinks = nil
		nd.AddIntraLink(1, 2)
		for i := int32(7); i <= 11; i++ {
			nd.AddIntraLink(i, i-5)
		}
		log := ix.StartRecording()
		if err := ix.DiffModify(0, nd); err != nil {
			t.Fatal(err)
		}
		ix.StopRecording()

		collBytes, err := core.EncodeCollOps(log.Coll)
		if err != nil {
			t.Fatal(err)
		}
		w, _, err := storage.OpenWAL(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.AppendBatch(1, collBytes, log.Cover); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	dir := t.TempDir()
	first := runOnce(filepath.Join(dir, "a.wal"))
	if len(first) == 0 {
		t.Fatal("empty WAL written")
	}
	for i := 0; i < 3; i++ {
		next := runOnce(filepath.Join(dir, "b.wal"))
		if !bytes.Equal(first, next) {
			t.Fatalf("run %d: WAL bytes differ for identical logical batch (%d vs %d bytes)", i, len(first), len(next))
		}
		os.Remove(filepath.Join(dir, "b.wal"))
	}
}
