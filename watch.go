package hopi

import (
	"context"
	"sync"

	"hopi/internal/core"
	"hopi/internal/watch"
)

// ErrWatchClosed is returned by Watch.Next after the watch (or the
// index) has been closed, or after a Resync event was delivered.
var ErrWatchClosed = watch.ErrClosed

// WatchEvent is one live-query notification. The first event has Init
// set and carries the full result set in Add; later events carry
// incremental deltas: apply Remove first, then Add (an Add for an
// element already present replaces it — ranked watches re-Add on
// score change). A Resync event is terminal: the consumer fell too
// far behind and must re-subscribe with WatchResume(Epoch).
type WatchEvent struct {
	Epoch     uint64
	Init      bool
	Add       []QueryResult
	Remove    []ElemID
	Resync    bool
	Coalesced int
}

// Watch is a live subscription to a prepared query's result set; see
// Index.Watch.
type Watch struct {
	ses     *watch.Session
	resumed bool
}

// Next blocks until the next event, context cancellation, or close.
func (w *Watch) Next(ctx context.Context) (*WatchEvent, error) {
	ev, err := w.ses.Next(ctx)
	if err != nil {
		return nil, err
	}
	out := &WatchEvent{
		Epoch:     ev.Epoch,
		Init:      ev.Init,
		Resync:    ev.Resync,
		Coalesced: ev.Coalesced,
	}
	if len(ev.Add) > 0 {
		out.Add = make([]QueryResult, len(ev.Add))
		for i, r := range ev.Add {
			out.Add[i] = QueryResult{Element: r.Element, Doc: r.Doc, Tag: r.Tag, Score: r.Score}
		}
	}
	if len(ev.Remove) > 0 {
		out.Remove = make([]ElemID, len(ev.Remove))
		for i, e := range ev.Remove {
			out.Remove[i] = e
		}
	}
	return out, nil
}

// Close ends the subscription. Idempotent.
func (w *Watch) Close() { w.ses.Close() }

// Resumed reports whether the subscription resumed an earlier session
// (WatchResume epoch matched the current snapshot): no Init event is
// delivered and the first event is an incremental delta.
func (w *Watch) Resumed() bool { return w.resumed }

// WatchStats aggregates live-query activity on one index.
type WatchStats struct {
	// Sessions is the number of live subscriptions; QueuedDeltas how
	// many of them have an undelivered pending delta.
	Sessions     int `json:"sessions"`
	QueuedDeltas int `json:"queuedDeltas"`
	// Delivered counts events handed to consumers; Coalesced counts
	// maintenance batches that were merged into an already-pending
	// delta instead of producing their own event; Evictions counts
	// slow-consumer resyncs.
	Delivered uint64 `json:"delivered"`
	Coalesced uint64 `json:"coalesced"`
	Evictions uint64 `json:"evictions"`
	// FullRuns and IncrementalDeltas count notifier evaluation rounds
	// per strategy: full re-run + diff vs. delta-seeded DiffEval.
	FullRuns          uint64 `json:"fullRuns"`
	IncrementalDeltas uint64 `json:"incrementalDeltas"`
}

// WatchStats reports live-query counters; all zero when no watch was
// ever opened on this index.
func (ix *Index) WatchStats() WatchStats {
	ws := ix.watch.Load()
	if ws == nil {
		return WatchStats{}
	}
	st := ws.hub.Stats()
	return WatchStats{
		Sessions:          st.Sessions,
		QueuedDeltas:      st.QueuedDeltas,
		Delivered:         st.Delivered,
		Coalesced:         st.Coalesced,
		Evictions:         st.Evictions,
		FullRuns:          st.FullRuns,
		IncrementalDeltas: st.Incremental,
	}
}

// Epoch returns the index's current version stamp — the epoch the
// next snapshot will carry. On durable indexes and followers this is
// the committed WAL sequence.
func (ix *Index) Epoch() uint64 { return ix.epoch.Load() }

type watchConfig struct {
	maxPending int
	ranked     bool
	resume     uint64
	hasResume  bool
}

// WatchOption configures Index.Watch.
type WatchOption func(*watchConfig)

// WatchMaxPending bounds the per-session pending delta to n elements
// (adds + removes); a consumer that falls further behind is evicted
// with a Resync event. n ≤ 0 removes the bound. Default 8192.
func WatchMaxPending(n int) WatchOption {
	return func(c *watchConfig) { c.maxPending = n }
}

// WatchRanked subscribes to the ranked (scored) result set; requires
// an index built WithDistance. Ranked watches always re-evaluate on
// change (scores are global), so they cost O(query) per notification,
// and re-Add an element when its score changes.
func WatchRanked() WatchOption {
	return func(c *watchConfig) { c.ranked = true }
}

// WatchResume requests resumption from a previously delivered event
// epoch. If the index's current snapshot still carries exactly that
// epoch, the Init event is skipped (Watch.Resumed reports true) and
// the consumer's retained result set stays valid; otherwise a fresh
// Init event is delivered as usual.
func WatchResume(epoch uint64) WatchOption {
	return func(c *watchConfig) { c.resume = epoch; c.hasResume = true }
}

// Watch subscribes to live updates of pq's result set. The returned
// Watch first delivers an Init event carrying the full result at the
// current snapshot, then one incremental {add, remove, epoch} event
// per committed maintenance batch (bursts coalesce into one event).
// Works on primaries and replication followers alike; ctx cancels
// the subscription (Next also honors its own ctx).
//
// Notifications are delta-seeded: each batch's ChangeLog is condensed
// into a summary and only elements the summary can have affected are
// re-tested, so notification cost tracks the batch size, not the
// result size. Queries the summary cannot localize (rebuilds, deep
// paths, ranked watches) fall back to a full re-run + set diff, which
// is always exact.
func (ix *Index) Watch(ctx context.Context, pq *PreparedQuery, opts ...WatchOption) (*Watch, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg := watchConfig{maxPending: 8192}
	for _, o := range opts {
		o(&cfg)
	}
	ws := ix.watcher()
	s := ix.Snapshot()

	res := map[int32]float64{}
	var init []watch.Result
	if cfg.ranked {
		matches, err := s.eng.EvalRankedCtx(ctx, pq.q)
		if err != nil {
			return nil, err
		}
		init = make([]watch.Result, 0, len(matches))
		for _, m := range matches {
			res[m.Element] = m.Score
			init = append(init, toWatchResult(s, m.Element, m.Score))
		}
	} else {
		ids, err := s.eng.EvalCtx(ctx, pq.q)
		if err != nil {
			return nil, err
		}
		init = make([]watch.Result, 0, len(ids))
		for _, id := range ids {
			res[id] = 0
			init = append(init, toWatchResult(s, id, 0))
		}
	}

	resumed := cfg.hasResume && cfg.resume == s.Epoch()
	ses, err := ws.hub.Register(cfg.maxPending)
	if err != nil {
		return nil, err
	}
	if !resumed {
		ses.SetInitial(&watch.Event{Epoch: s.Epoch(), Add: init})
	}
	ws.add(&watchSession{ses: ses, pq: pq, ranked: cfg.ranked, fresh: true, at: s, res: res})
	go func() {
		select {
		case <-ctx.Done():
			ses.Close()
		case <-ses.Done():
		}
	}()
	return &Watch{ses: ses, resumed: resumed}, nil
}

// watchSession is the notifier-side state of one subscription: the
// snapshot the consumer is known to be at and the exact result set
// (with scores) delivered so far.
type watchSession struct {
	ses    *watch.Session
	pq     *PreparedQuery
	ranked bool
	// fresh forces a full re-run on the session's first processed
	// round: deltas consumed by that round may pre- or post-date the
	// registration snapshot, so only a re-run is guaranteed exact.
	fresh bool
	at    *Snapshot
	res   map[int32]float64
}

type stampedDelta struct {
	epoch uint64
	d     core.WatchDelta
}

// watcherState is the per-index notifier: it accumulates batch
// summaries stamped with their post-batch epoch (observe, called
// under the index write lock) and drains them in rounds (run
// goroutine), diffing each live session from its last-known snapshot
// to the current one.
type watcherState struct {
	ix  *Index
	hub *watch.Hub

	mu       sync.Mutex
	sessions []*watchSession
	pending  []stampedDelta
	lastSeen uint64
	seen     bool
	// badOrder latches when observed epochs stop increasing (poisoned
	// durable backend falls back to random epochs, or counter wrap):
	// the ≤-snapshot filter is meaningless then, so rounds consume
	// everything and every session falls back to a full re-run.
	badOrder bool

	notify chan struct{} // cap 1, coalescing
	stop   chan struct{}
	done   chan struct{}
}

// maxPendingDeltas caps the stamped-summary list; beyond it the whole
// list collapses into one summary carrying the max epoch, so the
// ≤-snapshot filter defers it until a snapshot covers all of it.
const maxPendingDeltas = 512

// watcher returns the index's notifier, starting it on first use.
func (ix *Index) watcher() *watcherState {
	if ws := ix.watch.Load(); ws != nil {
		return ws
	}
	ws := &watcherState{
		ix:     ix,
		hub:    watch.NewHub(),
		notify: make(chan struct{}, 1),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	if !ix.watch.CompareAndSwap(nil, ws) {
		return ix.watch.Load()
	}
	go ws.run()
	return ws
}

// observe records one committed batch's summary. Called with the
// index write lock held (ix.mu → ws.mu is the only permitted order).
// It does not signal the notifier: primaries signal right after,
// followers defer the signal to Quiesce so a buffered burst produces
// one round.
func (ws *watcherState) observe(epoch uint64, d core.WatchDelta) {
	if d.Empty() {
		return
	}
	ws.mu.Lock()
	if ws.seen && epoch <= ws.lastSeen {
		ws.badOrder = true
	}
	ws.seen = true
	ws.lastSeen = epoch
	ws.pending = append(ws.pending, stampedDelta{epoch: epoch, d: d})
	if len(ws.pending) > maxPendingDeltas {
		merged := stampedDelta{}
		for i := range ws.pending {
			if ws.pending[i].epoch > merged.epoch {
				merged.epoch = ws.pending[i].epoch
			}
			merged.d.Merge(&ws.pending[i].d)
		}
		ws.pending = append(ws.pending[:0], merged)
	}
	ws.mu.Unlock()
}

// signal wakes the notifier; coalesces with a pending wake.
func (ws *watcherState) signal() {
	select {
	case ws.notify <- struct{}{}:
	default:
	}
}

func (ws *watcherState) add(s *watchSession) {
	ws.mu.Lock()
	ws.sessions = append(ws.sessions, s)
	ws.mu.Unlock()
	ws.signal()
}

// shutdown stops the notifier goroutine and closes every session.
// Called from Index.Close after the watcher pointer is swapped out.
func (ws *watcherState) shutdown() {
	close(ws.stop)
	<-ws.done
	ws.hub.Close()
}

func (ws *watcherState) run() {
	defer close(ws.done)
	for {
		select {
		case <-ws.stop:
			return
		case <-ws.notify:
			ws.round()
		}
	}
}

// round brings every live session up to the current snapshot. The
// snapshot is taken FIRST; only summaries stamped at or before its
// epoch are consumed (newer ones stay pending for the next round) —
// consuming a summary for changes the snapshot does not contain would
// lose them forever.
func (ws *watcherState) round() {
	s := ws.ix.Snapshot()

	ws.mu.Lock()
	bad := ws.badOrder
	var d core.WatchDelta
	batches := 0
	rest := ws.pending[:0]
	for i := range ws.pending {
		if bad || ws.pending[i].epoch <= s.Epoch() {
			d.Merge(&ws.pending[i].d)
			batches++
		} else {
			rest = append(rest, ws.pending[i])
		}
	}
	ws.pending = rest
	live := ws.sessions[:0]
	for _, sess := range ws.sessions {
		if sess.ses.Active() {
			live = append(live, sess)
		}
	}
	ws.sessions = live
	sessions := append([]*watchSession(nil), live...)
	ws.mu.Unlock()

	for _, sess := range sessions {
		ws.roundSession(sess, s, &d, batches, bad)
	}
}

func (ws *watcherState) roundSession(sess *watchSession, s *Snapshot, d *core.WatchDelta, batches int, bad bool) {
	if !sess.ses.Active() {
		return
	}
	if sess.at == s || (!bad && sess.at.Epoch() == s.Epoch()) {
		return // already current; keep fresh until a real round runs
	}
	if batches < 1 {
		batches = 1
	}

	if !bad && !sess.fresh && !sess.ranked {
		add, remove, ok := s.eng.DiffEval(sess.at.eng, sess.pq.q, d, func(v int32) bool {
			_, in := sess.res[v]
			return in
		})
		if ok {
			ws.hub.CountIncremental()
			if len(add) > 0 || len(remove) > 0 {
				out := make([]watch.Result, len(add))
				for i, id := range add {
					out[i] = toWatchResult(s, id, 0)
					sess.res[id] = 0
				}
				for _, id := range remove {
					delete(sess.res, id)
				}
				sess.ses.Push(s.Epoch(), out, remove, batches)
			}
			sess.at = s
			sess.fresh = false
			return
		}
	}

	// Fallback: full re-run on the new snapshot, diffed against the
	// session's delivered result set. Always exact.
	ws.hub.CountFullRerun()
	next := map[int32]float64{}
	if sess.ranked {
		matches, err := s.eng.EvalRanked(sess.pq.q)
		if err != nil {
			// cannot produce a correct delta; force the client to
			// re-subscribe from this epoch
			sess.ses.Evict(s.Epoch())
			sess.at = s
			return
		}
		for _, m := range matches {
			next[m.Element] = m.Score
		}
	} else {
		for _, id := range s.eng.Eval(sess.pq.q) {
			next[id] = 0
		}
	}
	var add []watch.Result
	var remove []int32
	for id, score := range next {
		if old, in := sess.res[id]; !in || old != score {
			add = append(add, toWatchResult(s, id, score))
		}
	}
	for id := range sess.res {
		if _, in := next[id]; !in {
			remove = append(remove, id)
		}
	}
	if len(add) > 0 || len(remove) > 0 {
		sess.ses.Push(s.Epoch(), add, remove, batches)
	}
	sess.res = next
	sess.at = s
	sess.fresh = false
}

func toWatchResult(s *Snapshot, id int32, score float64) watch.Result {
	qr := s.result(id, score, nil)
	return watch.Result{Element: qr.Element, Doc: qr.Doc, Tag: qr.Tag, Score: score}
}
