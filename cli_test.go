package hopi

// End-to-end test of the command-line pipeline: hopigen → hopibuild →
// hopiquery/hopistats, exercising the same binaries a user would run.
// Skipped under -short (it compiles the commands).

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Dir = "."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("build %s: %v\n%s", name, err, out)
	}
	return bin
}

func runTool(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles binaries")
	}
	dir := t.TempDir()
	hopigen := buildTool(t, dir, "hopigen")
	hopibuild := buildTool(t, dir, "hopibuild")
	hopiquery := buildTool(t, dir, "hopiquery")
	hopistats := buildTool(t, dir, "hopistats")

	corpus := filepath.Join(dir, "corpus")
	out := runTool(t, hopigen, "-synthetic", "dblp", "-docs", "40", "-out", corpus)
	if !strings.Contains(out, "wrote 40 XML files") {
		t.Fatalf("hopigen output: %s", out)
	}
	entries, err := os.ReadDir(corpus)
	if err != nil || len(entries) != 40 {
		t.Fatalf("corpus dir: %v (%d files)", err, len(entries))
	}

	index := filepath.Join(dir, "corpus.hopi")
	out = runTool(t, hopibuild, "-in", corpus, "-out", index, "-distance", "-partitioner", "nodes", "-cap", "200")
	if !strings.Contains(out, "label entries") || !strings.Contains(out, "saved") {
		t.Fatalf("hopibuild output: %s", out)
	}

	out = runTool(t, hopiquery, "-index", index, "-expr", "//article//author", "-limit", "3")
	if !strings.Contains(out, "<author>") {
		t.Fatalf("hopiquery expr output: %s", out)
	}
	out = runTool(t, hopiquery, "-index", index, "-expr", "//article//cite", "-ranked", "-limit", "3")
	if !strings.Contains(out, "0.") {
		t.Fatalf("hopiquery ranked output: %s", out)
	}
	out = runTool(t, hopiquery, "-index", index, "-from", "pub00000.xml", "-to", "pub00001.xml")
	if !strings.Contains(out, "true") && !strings.Contains(out, "false") {
		t.Fatalf("hopiquery reach output: %s", out)
	}
	out = runTool(t, hopiquery, "-index", index, "-descendants", "pub00039.xml", "-limit", "5")
	if !strings.Contains(out, "pub00039.xml") {
		t.Fatalf("hopiquery descendants output: %s", out)
	}

	out = runTool(t, hopistats, "-in", corpus, "-closure=false")
	if !strings.Contains(out, "# docs:     40") {
		t.Fatalf("hopistats output: %s", out)
	}
}
