module hopi

go 1.24
