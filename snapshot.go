package hopi

import (
	"context"

	"hopi/internal/core"
	"hopi/internal/query"
)

// Snapshot is an immutable, point-in-time view of an Index: a deep
// copy of the collection and cover plus a query engine built once for
// the copy. Snapshots are safe for unlimited concurrent use and are
// never invalidated — a reader keeps its snapshot for as long as it
// likes while Apply publishes newer states behind it. Obtain one with
// Index.Snapshot, which caches the latest snapshot and reuses it until
// the next maintenance batch.
type Snapshot struct {
	coll  *Collection
	ix    *core.Index
	eng   *query.Engine
	epoch uint64 // maintenance-batch counter at snapshot time
	// seqEpoch marks the epoch as a durable WAL sequence number
	// (totally ordered, portable across replicas of the same primary)
	// rather than a per-instance random counter; see StaleTokenError.
	seqEpoch bool
	// scope is the replication-scope identity tokens are bound to; see
	// Index.scope.
	scope uint64
	// met, when set, receives query-latency observations from cursors
	// opened on this snapshot; see metrics.go. Set by Index.Snapshot
	// before the snapshot is published, nil on hand-built snapshots.
	met *indexMetrics
}

func newSnapshot(src *core.Index, epoch uint64, seqEpoch bool, scope uint64) *Snapshot {
	// Derive the posting index and cycle info on the live side first:
	// maintenance keeps the postings warm through the delta stream, so
	// every snapshot clone shares them as an immutable copy-on-write
	// view (the live side copies before its next mutation) and the
	// cycle info by pointer, instead of re-deriving O(|L|) state per
	// snapshot. Warm on the clone only fills in what a Rebuild or
	// structural change invalidated — outside any request path either
	// way.
	src.Warm()
	cix := src.Clone()
	cix.Warm()
	return &Snapshot{
		coll:     &Collection{c: cix.Collection()},
		ix:       cix,
		eng:      query.NewEngine(cix.Collection(), cix),
		epoch:    epoch,
		seqEpoch: seqEpoch,
		scope:    scope,
	}
}

// Epoch returns the snapshot's maintenance epoch: an opaque version
// stamp bumped on every maintenance batch. Resume tokens embed it — a
// token is valid only on snapshots of the same epoch. For pure
// in-memory indexes the epoch is seeded randomly per instance, so a
// token from a different index or an earlier process fails
// ErrStaleToken instead of colliding. For indexes with an attached
// durable store (and for replication followers) the epoch is the
// durable WAL batch sequence: replicas of the same primary assign
// identical epochs to identical states, so a token issued by one
// replica resumes on any other that has applied the same sequence.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Collection returns the snapshot's frozen collection. It reflects the
// state at snapshot time and never changes.
func (s *Snapshot) Collection() *Collection { return s.coll }

// Reaches reports whether element u reaches element v over the
// ancestor/descendant/link axes.
func (s *Snapshot) Reaches(u, v ElemID) bool { return s.ix.Reaches(u, v) }

// Distance returns the shortest path length from u to v, or Infinite
// when v is unreachable. The index must be built with
// Options.WithDistance.
func (s *Snapshot) Distance(u, v ElemID) (uint32, error) { return s.ix.Distance(u, v) }

// Descendants returns all elements reachable from u, including u.
func (s *Snapshot) Descendants(u ElemID) []ElemID { return s.ix.Descendants(u) }

// Ancestors returns all elements that reach u, including u.
func (s *Snapshot) Ancestors(u ElemID) []ElemID { return s.ix.Ancestors(u) }

// Size returns the number of stored label entries |L| at snapshot
// time.
func (s *Snapshot) Size() int { return s.ix.Size() }

// Labels summarizes the snapshot's label distribution.
func (s *Snapshot) Labels() core.LabelStats { return s.ix.Labels() }

// Stats returns the build statistics of the underlying index.
func (s *Snapshot) Stats() core.BuildStats { return s.ix.Stats() }

// --- queries ----------------------------------------------------------

// queryConfig collects the options of one QueryCtx or Run call.
type queryConfig struct {
	limit  int
	ranked bool
	resume string
}

// QueryOption configures a QueryCtx call.
type QueryOption func(*queryConfig)

// QueryLimit truncates the result list to at most n entries (n <= 0
// means unlimited). For ranked queries the n best-scoring matches are
// kept; for unranked queries the n smallest element IDs.
func QueryLimit(n int) QueryOption {
	return func(c *queryConfig) { c.limit = n }
}

// QueryRanked ranks matches by connection length (XXL-style: closer
// matches score higher). Requires a distance-aware index.
func QueryRanked() QueryOption {
	return func(c *queryConfig) { c.ranked = true }
}

// QueryResume continues a query after a previous cursor's resume token
// (see Cursor.Token). The token must come from the same query and
// ranking mode on a snapshot of the same epoch.
func QueryResume(token string) QueryOption {
	return func(c *queryConfig) { c.resume = token }
}

// QueryCtx evaluates a path expression such as "//book//author"
// against the snapshot. The // axis follows parent-child edges and all
// links, crossing document boundaries; it matches over paths of length
// ≥ 1, so an element is its own //-descendant only through a genuine
// link cycle (on link-free trees //a//a is empty, as in XPath).
// Evaluation polls ctx and returns its error once it is cancelled;
// options select ranking and result truncation.
//
// QueryCtx is a compatibility wrapper over Prepare and Run: with
// QueryLimit the final step's evaluation stops early (limit pushdown)
// instead of materializing everything and slicing, and the limited
// result is exactly a prefix of the unlimited one.
func (s *Snapshot) QueryCtx(ctx context.Context, expr string, opts ...QueryOption) ([]QueryResult, error) {
	pq, err := Prepare(expr)
	if err != nil {
		return nil, err
	}
	cur, err := s.Run(ctx, pq, opts...)
	if err != nil {
		return nil, err
	}
	defer cur.Close()
	var out []QueryResult
	for cur.Next() {
		out = append(out, cur.Result())
	}
	if err := cur.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Query evaluates a path expression with default options and no
// cancellation.
func (s *Snapshot) Query(expr string) ([]QueryResult, error) {
	return s.QueryCtx(context.Background(), expr)
}

// QueryRanked evaluates a path expression and ranks matches by
// connection length. Requires a distance-aware index.
func (s *Snapshot) QueryRanked(expr string) ([]QueryResult, error) {
	return s.QueryCtx(context.Background(), expr, QueryRanked())
}

func (s *Snapshot) result(id ElemID, score float64, path []ElemID) QueryResult {
	return QueryResult{
		Element: id,
		Doc:     s.coll.DocName(s.coll.DocOf(id)),
		Tag:     s.coll.Tag(id),
		Score:   score,
		Path:    path,
	}
}
