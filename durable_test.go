package hopi

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"hopi/internal/storage"
	"hopi/internal/twohop"
)

// --- helpers ----------------------------------------------------------

// crash simulates a process death: file handles close, nothing is
// flushed or checkpointed. The on-disk state is whatever the WAL and
// the last checkpoint left behind.
func crash(ix *Index) {
	if ix.dur != nil {
		d := ix.dur
		d.stopCompactor()
		d.wal.Close()
		if d.store != nil {
			d.store.Abandon()
		}
		ix.dur = nil
	}
}

// scriptOp is one deterministic maintenance step; materialized into a
// fresh Batch per target index so document objects are never shared.
type scriptOp struct {
	kind   int    // 0 insert doc+cite, 1 delete doc, 2 insert link, 3 delete link, 4 rebuild
	name   string // document to insert or delete
	target string // cite/link target document
}

func buildScriptBatch(op scriptOp) *Batch {
	b := NewBatch()
	switch op.kind {
	case 0:
		d := NewDocument(op.name, "article")
		d.AddElement(d.Root(), "title")
		d.AddElement(d.Root(), "author")
		cite := d.AddElement(d.Root(), "cite")
		b.InsertDocument(d)
		if op.target != "" {
			b.InsertLink(op.name, cite, op.target, 0)
		}
	case 1:
		b.DeleteDocumentByName(op.name)
	case 2:
		b.InsertLink(op.name, 0, op.target, 1)
	case 3:
		// inverse of kind 2; only scripted when the link exists
		b.DeleteLink(op.name, 0, op.target, 1)
	case 4:
		b.Rebuild()
	}
	return b
}

// randomScript generates n always-valid maintenance steps over the
// base documents plus its own insertions.
func randomScript(rng *rand.Rand, baseDocs []string, n int, withRebuild bool) []scriptOp {
	alive := append([]string(nil), baseDocs...)
	var mine []string // deletable (scripted) docs
	type link struct{ from, to string }
	var links []link
	var ops []scriptOp
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("doc%04d.xml", i)
		switch k := rng.Intn(10); {
		case k < 4: // insert
			target := alive[rng.Intn(len(alive))]
			ops = append(ops, scriptOp{kind: 0, name: name, target: target})
			alive = append(alive, name)
			mine = append(mine, name)
		case k < 6 && len(mine) > 0: // delete a scripted doc
			j := rng.Intn(len(mine))
			victim := mine[j]
			mine = append(mine[:j], mine[j+1:]...)
			for a := 0; a < len(alive); a++ {
				if alive[a] == victim {
					alive = append(alive[:a], alive[a+1:]...)
					break
				}
			}
			kept := links[:0]
			for _, l := range links {
				if l.from != victim && l.to != victim {
					kept = append(kept, l)
				}
			}
			links = kept
			ops = append(ops, scriptOp{kind: 1, name: victim})
		case k < 8: // add a root→child link between two live docs
			from := alive[rng.Intn(len(alive))]
			to := alive[rng.Intn(len(alive))]
			if from == to {
				continue
			}
			dup := false
			for _, l := range links {
				if l.from == from && l.to == to {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			links = append(links, link{from, to})
			ops = append(ops, scriptOp{kind: 2, name: from, target: to})
		case k < 9 && len(links) > 0: // remove one of those links
			j := rng.Intn(len(links))
			l := links[j]
			links = append(links[:j], links[j+1:]...)
			ops = append(ops, scriptOp{kind: 3, name: l.from, target: l.to})
		case withRebuild: // occasional rebuild
			ops = append(ops, scriptOp{kind: 4})
		}
	}
	return ops
}

func baseCollection(t *testing.T) (*Collection, []string) {
	t.Helper()
	files := map[string][]byte{
		"a.xml": []byte(`<bib><book><title>A</title><author/></book><cite href="b.xml"/></bib>`),
		"b.xml": []byte(`<bib><book><title>B</title><author/></book><cite href="c.xml"/></bib>`),
		"c.xml": []byte(`<paper><section><author/></section></paper>`),
	}
	coll, err := ParseCollection(files)
	if err != nil {
		t.Fatal(err)
	}
	return coll, []string{"a.xml", "b.xml", "c.xml"}
}

// oracle builds a fresh in-memory index from the same base collection
// and applies script ops [0, k).
func oracle(t *testing.T, ops []scriptOp, k int, withDist bool) *Index {
	t.Helper()
	coll, _ := baseCollection(t)
	bopts := DefaultOptions()
	bopts.WithDistance = withDist
	bopts.Seed = 1
	ix, err := Build(coll, bopts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		if _, err := ix.Apply(context.Background(), buildScriptBatch(ops[i])); err != nil {
			t.Fatalf("oracle op %d: %v", i, err)
		}
	}
	return ix
}

// assertSameAnswers compares got against want over every element pair:
// reachability always, distance when both carry it.
func assertSameAnswers(t *testing.T, got, want *Index, label string) {
	t.Helper()
	n := want.coll.c.NumAllocatedIDs()
	if g := got.coll.c.NumAllocatedIDs(); g != n {
		t.Fatalf("%s: %d allocated IDs, oracle has %d", label, g, n)
	}
	withDist := want.ix.Cover().WithDist && got.ix.Cover().WithDist
	for u := int32(0); u < int32(n); u++ {
		for v := int32(0); v < int32(n); v++ {
			if g, w := got.Reaches(u, v), want.Reaches(u, v); g != w {
				t.Fatalf("%s: Reaches(%d,%d) = %v, oracle %v", label, u, v, g, w)
			}
			if withDist {
				g, _ := got.Distance(u, v)
				w, _ := want.Distance(u, v)
				if g != w {
					t.Fatalf("%s: Distance(%d,%d) = %d, oracle %d", label, u, v, g, w)
				}
			}
		}
	}
}

// --- round trip and restart ------------------------------------------

func TestDurableCreateApplyReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ix.hopi")
	coll, base := baseCollection(t)
	opts := DefaultOptions()
	opts.WithDistance = true
	opts.Seed = 1
	ix, err := Create(path, coll, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !ix.Durable() {
		t.Fatal("Create returned a non-durable index")
	}
	ops := randomScript(rand.New(rand.NewSource(7)), base, 30, true)
	for i, op := range ops {
		if _, err := ix.Apply(context.Background(), buildScriptBatch(op)); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(path, Durable())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	assertSameAnswers(t, re, oracle(t, ops, len(ops), true), "clean reopen")

	// the files also still load in plain (in-memory) mode
	mem, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	assertSameAnswers(t, mem, oracle(t, ops, len(ops), true), "plain reopen")
}

func TestDurableCrashRecoversEveryCommittedBatch(t *testing.T) {
	for _, checkpointEvery := range []int{0, 5} {
		t.Run(fmt.Sprintf("checkpointEvery=%d", checkpointEvery), func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "ix.hopi")
			coll, base := baseCollection(t)
			opts := DefaultOptions()
			opts.Seed = 1
			ix, err := Create(path, coll, opts)
			if err != nil {
				t.Fatal(err)
			}
			ops := randomScript(rand.New(rand.NewSource(11)), base, 25, false)
			for i, op := range ops {
				if _, err := ix.Apply(context.Background(), buildScriptBatch(op)); err != nil {
					t.Fatalf("op %d: %v", i, err)
				}
				if checkpointEvery > 0 && i%checkpointEvery == checkpointEvery-1 {
					if err := ix.Checkpoint(); err != nil {
						t.Fatalf("checkpoint after op %d: %v", i, err)
					}
				}
			}
			crash(ix) // no Close, no final checkpoint

			re, err := Open(path, Durable())
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			assertSameAnswers(t, re, oracle(t, ops, len(ops), false), "crash reopen")
		})
	}
}

func TestDurableTornWALTailDropsOnlyLastBatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ix.hopi")
	coll, base := baseCollection(t)
	ix, err := Create(path, coll, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ops := randomScript(rand.New(rand.NewSource(3)), base, 12, false)
	for i, op := range ops {
		if _, err := ix.Apply(context.Background(), buildScriptBatch(op)); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	crash(ix)

	// tear the last record: chop a few bytes off the WAL tail,
	// simulating a crash mid-append
	walPath := path + walSuffix
	st, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walPath, st.Size()-3); err != nil {
		t.Fatal(err)
	}

	re, err := Open(path, Durable())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	// the torn batch is gone; everything before it survives
	assertSameAnswers(t, re, oracle(t, ops, len(ops)-1, false), "torn tail")
}

// --- randomized crash recovery under injected store failures ----------

// dyingPager wraps a real pager and, once armed and exhausted, fails
// every subsequent operation — a disk that died and stays dead.
type dyingPager struct {
	inner     storage.Pager
	remaining atomic.Int64 // ops until death; negative = disarmed
}

var errDiskDied = errors.New("injected store failure")

func (p *dyingPager) tick() error {
	if p.remaining.Load() < 0 {
		return nil
	}
	if p.remaining.Add(-1) < 0 {
		p.remaining.Store(0) // stay dead
		return errDiskDied
	}
	return nil
}

func (p *dyingPager) ReadPage(id storage.PageID, buf []byte) error {
	if err := p.tick(); err != nil {
		return err
	}
	return p.inner.ReadPage(id, buf)
}

func (p *dyingPager) WritePage(id storage.PageID, buf []byte) error {
	if err := p.tick(); err != nil {
		return err
	}
	return p.inner.WritePage(id, buf)
}

func (p *dyingPager) Allocate() (storage.PageID, error) {
	if err := p.tick(); err != nil {
		return storage.InvalidPage, err
	}
	return p.inner.Allocate()
}

func (p *dyingPager) NumPages() uint32 { return p.inner.NumPages() }
func (p *dyingPager) Sync() error {
	if err := p.tick(); err != nil {
		return err
	}
	return p.inner.Sync()
}
func (p *dyingPager) Close() error { return p.inner.Close() }

// TestDurableCrashRecoveryRandomized drives randomized maintenance
// through a store pager that dies mid-run, reopens from the surviving
// files, and checks every batch the WAL committed against an in-memory
// oracle rebuilt from the same operation log. The store failure point
// sweeps across the workload so batches die during delta application
// and during checkpoint flushes alike.
func TestDurableCrashRecoveryRandomized(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "ix.hopi")

			dp := &dyingPager{}
			dp.remaining.Store(-1)
			origCreate := createPagerFn
			createPagerFn = func(p string) (storage.Pager, error) {
				inner, err := storage.CreateFilePager(p)
				if err != nil {
					return nil, err
				}
				dp.inner = inner
				return dp, nil
			}
			defer func() { createPagerFn = origCreate }()

			coll, base := baseCollection(t)
			opts := DefaultOptions()
			opts.Seed = 1
			ix, err := Create(path, coll, opts)
			if err != nil {
				t.Fatal(err)
			}
			createPagerFn = origCreate

			rng := rand.New(rand.NewSource(int64(100 + trial)))
			ops := randomScript(rng, base, 20, false)
			// arm the failure: die after a trial-dependent number of
			// pager operations so the death lands in different phases
			dp.remaining.Store(int64(50 + trial*211))

			committed := 0
			for i, op := range ops {
				_, err := ix.Apply(context.Background(), buildScriptBatch(op))
				if err != nil {
					if !errors.Is(err, errDiskDied) {
						t.Fatalf("op %d: unexpected error: %v", i, err)
					}
					break
				}
				committed = i + 1
				if i%4 == 3 {
					if err := ix.Checkpoint(); err != nil {
						if !errors.Is(err, errDiskDied) {
							t.Fatalf("checkpoint after op %d: %v", i, err)
						}
						break
					}
				}
			}
			crash(ix)
			dp.remaining.Store(-1) // the replacement disk works

			re, err := Open(path, Durable())
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			// every batch whose Apply returned success must be visible;
			// a batch whose store application died may additionally have
			// been committed by the WAL before the failure
			_, lastSeq, ok := re.WALSize()
			if !ok {
				t.Fatal("reopened index is not durable")
			}
			if int(lastSeq) < committed {
				t.Fatalf("recovered %d batches, but %d were acknowledged", lastSeq, committed)
			}
			if int(lastSeq) > len(ops) {
				t.Fatalf("recovered %d batches out of %d applied", lastSeq, len(ops))
			}
			assertSameAnswers(t, re, oracle(t, ops, int(lastSeq), false), "recovered")
		})
	}
}

// TestDurableIntraLinkInInsertBatchNotDuplicated is a regression test:
// a batch that inserts a document and then adds an intra-document link
// to it must log the link exactly once (the document snapshot in the
// WAL is taken at insert time, the link as its own op) — an aliased
// snapshot used to carry the link too, so recovery materialized it
// twice and a later DeleteLink removed only one copy.
func TestDurableIntraLinkInInsertBatchNotDuplicated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ix.hopi")
	coll, _ := baseCollection(t)
	opts := DefaultOptions()
	opts.Seed = 1
	ix, err := Create(path, coll, opts)
	if err != nil {
		t.Fatal(err)
	}

	b := NewBatch()
	d := NewDocument("self.xml", "article")
	child := d.AddElement(d.Root(), "sec")
	leaf := d.AddElement(child, "leaf")
	b.InsertDocument(d)
	b.InsertLink("self.xml", leaf, "self.xml", 0) // intra-document: leaf → root
	if _, err := ix.Apply(context.Background(), b); err != nil {
		t.Fatal(err)
	}
	crash(ix) // recover purely from the WAL

	re, err := Open(path, Durable())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	rc := re.Collection()
	doc, ok := rc.DocByName("self.xml")
	if !ok {
		t.Fatal("self.xml lost")
	}
	if n := len(rc.c.Docs[doc].IntraLinks); n != 1 {
		t.Fatalf("recovered document has %d intra links, want 1", n)
	}
	// deleting the link must fully remove it
	db := NewBatch()
	db.DeleteLink("self.xml", leaf, "self.xml", 0)
	if _, err := re.Apply(context.Background(), db); err != nil {
		t.Fatal(err)
	}
	u, v := rc.ElemID(doc, leaf), rc.ElemID(doc, 0)
	if re.Reaches(u, v) {
		t.Fatal("leaf still reaches root after the only link was deleted")
	}
}

// --- store/memory equivalence ----------------------------------------

// TestDurableStoreMatchesMemoryLabels asserts the strongest form of
// the ApplyDelta contract: after every random batch, the attached
// store holds byte-identical Lin/Lout labels to the in-memory cover.
func TestDurableStoreMatchesMemoryLabels(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ix.hopi")
	coll, base := baseCollection(t)
	opts := DefaultOptions()
	opts.WithDistance = true
	opts.Seed = 1
	ix, err := Create(path, coll, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	ops := randomScript(rand.New(rand.NewSource(23)), base, 40, true)
	for i, op := range ops {
		if _, err := ix.Apply(context.Background(), buildScriptBatch(op)); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		cover := ix.ix.Cover()
		st := ix.dur.store
		if st.NumNodes() != cover.N() {
			t.Fatalf("after op %d: store has %d nodes, cover %d", i, st.NumNodes(), cover.N())
		}
		for v := int32(0); v < int32(cover.N()); v++ {
			sin, err := st.Lin(v)
			if err != nil {
				t.Fatal(err)
			}
			sout, err := st.Lout(v)
			if err != nil {
				t.Fatal(err)
			}
			if !equalEntries(sin, cover.In[v]) {
				t.Fatalf("after op %d (%+v): Lin(%d) store %v, memory %v", i, op, v, sin, cover.In[v])
			}
			if !equalEntries(sout, cover.Out[v]) {
				t.Fatalf("after op %d (%+v): Lout(%d) store %v, memory %v", i, op, v, sout, cover.Out[v])
			}
		}
	}
}

func equalEntries(a, b []twohop.Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// --- write amplification ---------------------------------------------

// countingPager counts page writes and written bytes.
type countingPager struct {
	inner  storage.Pager
	writes atomic.Int64
}

func (p *countingPager) ReadPage(id storage.PageID, buf []byte) error {
	return p.inner.ReadPage(id, buf)
}
func (p *countingPager) WritePage(id storage.PageID, buf []byte) error {
	p.writes.Add(1)
	return p.inner.WritePage(id, buf)
}
func (p *countingPager) Allocate() (storage.PageID, error) { return p.inner.Allocate() }
func (p *countingPager) NumPages() uint32                  { return p.inner.NumPages() }
func (p *countingPager) Sync() error                       { return p.inner.Sync() }
func (p *countingPager) Close() error                      { return p.inner.Close() }

// TestDurableApplyIsIncremental asserts the acceptance criterion that
// a single-document insert writes O(delta) WAL bytes and store pages,
// not a full FromCover rewrite.
func TestDurableApplyIsIncremental(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ix.hopi")

	cp := &countingPager{}
	origCreate := createPagerFn
	createPagerFn = func(p string) (storage.Pager, error) {
		inner, err := storage.CreateFilePager(p)
		if err != nil {
			return nil, err
		}
		cp.inner = inner
		return cp, nil
	}
	defer func() { createPagerFn = origCreate }()

	// a base collection big enough that a full rewrite dwarfs a delta
	coll := NewCollection()
	for i := 0; i < 60; i++ {
		name := fmt.Sprintf("base%03d.xml", i)
		d := NewDocument(name, "article")
		for j := 0; j < 8; j++ {
			d.AddElement(d.Root(), "section")
		}
		coll.Add(d)
	}
	for i := 0; i < 59; i++ {
		if err := coll.AddLink(DocID(i), 3, DocID(i+1), 0); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := Create(path, coll, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	createPagerFn = origCreate

	totalPages := int64(cp.inner.NumPages())
	walBefore, _, _ := ix.WALSize()
	cp.writes.Store(0)

	op := scriptOp{kind: 0, name: "delta.xml", target: "base030.xml"}
	if _, err := ix.Apply(context.Background(), buildScriptBatch(op)); err != nil {
		t.Fatal(err)
	}

	// the apply itself must not write store pages: deltas go to the WAL
	// (fsynced) and the buffer pool only
	if w := cp.writes.Load(); w != 0 {
		t.Errorf("durable Apply wrote %d store pages; want 0 (WAL-only)", w)
	}
	walAfter, _, _ := ix.WALSize()
	walDelta := walAfter - walBefore
	storeBytes := totalPages * storage.PageSize
	if walDelta <= 0 {
		t.Fatal("apply appended nothing to the WAL")
	}
	if walDelta > storeBytes/4 {
		t.Errorf("single-doc insert logged %d WAL bytes vs %d store bytes — not O(delta)", walDelta, storeBytes)
	}

	// checkpoint writes only the dirtied pages, not the whole store
	if err := ix.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if w := cp.writes.Load(); w == 0 || w >= totalPages {
		t.Errorf("checkpoint wrote %d pages of %d — want an incremental subset", w, totalPages)
	}
}

// --- poisoning --------------------------------------------------------

func TestDurablePoisonedAfterCommitFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ix.hopi")

	dp := &dyingPager{}
	dp.remaining.Store(-1)
	origCreate := createPagerFn
	createPagerFn = func(p string) (storage.Pager, error) {
		inner, err := storage.CreateFilePager(p)
		if err != nil {
			return nil, err
		}
		dp.inner = inner
		return dp, nil
	}
	defer func() { createPagerFn = origCreate }()

	coll, base := baseCollection(t)
	ix, err := Create(path, coll, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		op := scriptOp{kind: 0, name: fmt.Sprintf("p%03d.xml", i), target: base[0]}
		if _, err := ix.Apply(context.Background(), buildScriptBatch(op)); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	dp.remaining.Store(0) // die on the next pager op: the checkpoint flush
	firstErr := ix.Checkpoint()
	if firstErr == nil {
		t.Fatal("store death never surfaced")
	}
	if !errors.Is(firstErr, errDiskDied) {
		t.Fatalf("unexpected error: %v", firstErr)
	}
	// every further write is refused fast, with the original cause
	_, err = ix.Apply(context.Background(), buildScriptBatch(scriptOp{kind: 0, name: "late.xml", target: base[0]}))
	if err == nil || !errors.Is(err, errDiskDied) {
		t.Fatalf("poisoned index accepted a write (err=%v)", err)
	}
	crash(ix)
}
