package hopi

import (
	"time"

	"hopi/internal/obs"
	"hopi/internal/storage"
)

// Index observability
//
// Every Index owns a lazily created obs.Registry reachable through
// Metrics(). Hot paths record into pre-registered handles (query
// latency by evaluation mode, Apply latency, WAL append/fsync,
// checkpoint/seal/compaction durations); state another subsystem
// already tracks — replication lag, segment stack shape, watch
// sessions — is sampled at scrape time through Gauge/CounterFuncs, so
// the registry never double-counts what /stats reports. Servers attach
// the registry as a sub-registry of their process registry and expose
// the whole tree on GET /metrics.

// indexMetrics bundles the Index's inline metric handles.
type indexMetrics struct {
	reg *obs.Registry
	// queryLatency is labeled by the evaluation mode of the step that
	// produced the results (see query.Plan.DominantMode).
	queryLatency *obs.HistogramVec
	applySeconds *obs.Histogram
	maintSeconds *obs.HistogramVec // op: checkpoint | seal | compact
	walAppend    *obs.Histogram
	walFsync     *obs.Histogram
	walBytes     *obs.Counter
}

// Metrics returns the index's metric registry, for attaching to a
// process-level registry served on /metrics. The registry is created
// on first use and lives for the index's lifetime.
func (ix *Index) Metrics() *obs.Registry { return ix.metrics().reg }

func (ix *Index) metrics() *indexMetrics {
	if m := ix.met.Load(); m != nil {
		return m
	}
	ix.metMu.Lock()
	defer ix.metMu.Unlock()
	if m := ix.met.Load(); m != nil {
		return m
	}
	m := newIndexMetrics(ix)
	ix.met.Store(m)
	return m
}

func newIndexMetrics(ix *Index) *indexMetrics {
	r := obs.NewRegistry()
	m := &indexMetrics{
		reg: r,
		queryLatency: r.HistogramVec("hopi_query_seconds",
			"Query cursor latency from Run to Close, by final-step evaluation mode.",
			obs.DefLatencyBuckets, "mode"),
		applySeconds: r.Histogram("hopi_apply_seconds",
			"Maintenance batch latency through Apply, commit included.",
			obs.DefLatencyBuckets),
		maintSeconds: r.HistogramVec("hopi_maintenance_seconds",
			"Durable maintenance durations: B-tree checkpoints, segment seals, stack compactions.",
			obs.DefLatencyBuckets, "op"),
		walAppend: r.Histogram("hopi_wal_append_seconds",
			"WAL record append latency, fsync included.",
			obs.DefSyncBuckets),
		walFsync: r.Histogram("hopi_wal_fsync_seconds",
			"fsync portion of each WAL append.",
			obs.DefSyncBuckets),
		walBytes: r.Counter("hopi_wal_append_bytes_total",
			"Bytes appended to the WAL, record framing included."),
	}

	r.GaugeFunc("hopi_wal_size_bytes",
		"Current write-ahead log size; drops to 0 at each checkpoint.",
		func() float64 {
			n, _, _ := ix.WALSize()
			return float64(n)
		})

	// Replication: sampled from ReplicaStatus so primary and follower
	// report through the same families.
	r.GaugeFunc("hopi_replication_lag_batches",
		"Committed batches the served state is behind the primary (0 on primaries).",
		func() float64 { return float64(ix.ReplicaStatus().Lag) })
	r.GaugeFunc("hopi_replication_applied_seq",
		"Durable batch sequence the served state reflects.",
		func() float64 { return float64(ix.ReplicaStatus().AppliedSeq) })
	r.GaugeFunc("hopi_replication_connected",
		"On a replica, whether the stream to the primary is open (1/0); 1 on primaries.",
		func() float64 {
			st := ix.ReplicaStatus()
			if st.Role == "replica" && !st.Connected {
				return 0
			}
			return 1
		})
	r.GaugeFunc("hopi_replication_follower_streams",
		"Currently connected follower streams (primaries only).",
		func() float64 { return float64(ix.ReplicaStatus().FollowerStreams) })
	r.CounterFunc("hopi_replication_batches_shipped_total",
		"Batches handed to follower streams by the publisher.",
		func() float64 { return float64(ix.shippedBatches()) })

	// Segment store shape; all zero on B-tree or in-memory indexes.
	r.GaugeFunc("hopi_segment_stack_depth",
		"Sealed segment files in the current stack.",
		func() float64 { return float64(ix.SegmentStats().Segments) })
	r.GaugeFunc("hopi_segment_delta_entries",
		"In-memory delta size (adds plus tombstones); sealing resets it.",
		func() float64 { return float64(ix.SegmentStats().DeltaEntries) })
	r.GaugeFunc("hopi_segment_sealed_bytes",
		"On-disk size of the sealed segment stack.",
		func() float64 { return float64(ix.SegmentStats().SealedBytes) })
	r.GaugeFunc("hopi_segment_compaction_backlog",
		"Segments over the compaction threshold (0 when within bounds).",
		func() float64 { return float64(ix.SegmentStats().CompactionBacklog) })
	r.CounterFunc("hopi_segment_compactions_total",
		"Completed stack compactions.",
		func() float64 { return float64(ix.SegmentStats().Compactions) })

	// Live-query watch rates.
	r.GaugeFunc("hopi_watch_sessions",
		"Live watch subscriptions.",
		func() float64 { return float64(ix.WatchStats().Sessions) })
	r.GaugeFunc("hopi_watch_queued_deltas",
		"Watch sessions with an undelivered pending delta.",
		func() float64 { return float64(ix.WatchStats().QueuedDeltas) })
	r.CounterFunc("hopi_watch_delivered_total",
		"Watch events handed to consumers.",
		func() float64 { return float64(ix.WatchStats().Delivered) })
	r.CounterFunc("hopi_watch_coalesced_total",
		"Maintenance batches merged into an already-pending watch delta.",
		func() float64 { return float64(ix.WatchStats().Coalesced) })
	r.CounterFunc("hopi_watch_evictions_total",
		"Slow watch consumers evicted with a resume epoch.",
		func() float64 { return float64(ix.WatchStats().Evictions) })
	return m
}

// shippedBatches samples the attached publisher's shipped count, 0
// when the index does not publish.
func (ix *Index) shippedBatches() uint64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if ix.pub == nil {
		return 0
	}
	return ix.pub.Shipped()
}

// wireWAL attaches append/fsync timing to a freshly opened WAL. Called
// once per durable attach, before the WAL is shared.
func (ix *Index) wireWAL(w *storage.WAL) {
	m := ix.metrics()
	w.OnAppend = func(total, fsync time.Duration, bytes int) {
		m.walAppend.Observe(total.Seconds())
		m.walFsync.Observe(fsync.Seconds())
		m.walBytes.Add(uint64(bytes))
	}
}
