package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hopi"
	"hopi/internal/gen"
)

// replConfig parameterizes the replication read-scaling experiment: a
// durable primary under continuous write load, N followers fed over
// real HTTP log shipping, and readers spread across the followers.
type replConfig struct {
	docs           int
	seed           int64
	duration       time.Duration
	writers        int
	readersPerNode int
	expr           string
	followerCounts []int
	// writeInterval paces each writer between batches. Unpaced writers
	// saturate the shared CPU and measure queue growth; paced writers
	// measure propagation delay — the lag that matters for staleness.
	writeInterval time.Duration
}

// replResult is one row: aggregate read throughput and replication lag
// at a given follower count.
type replResult struct {
	Followers   int
	QueriesPerS float64
	BatchesPerS float64
	LagP50      time.Duration
	LagP99      time.Duration
	LagSamples  int
}

// runRepl measures one follower count: writers apply batches at the
// primary for cfg.duration while readersPerNode readers query each
// follower's snapshots; per-batch replication lag is the time from the
// primary's Apply returning to a follower reporting the sequence
// applied.
func runRepl(cfg replConfig, followers int) (replResult, error) {
	dir, err := os.MkdirTemp("", "hopirepl")
	if err != nil {
		return replResult{}, err
	}
	defer os.RemoveAll(dir)

	coll := hopi.WrapCollection(gen.DBLP(gen.DefaultDBLP(cfg.docs, cfg.seed)))
	opts := hopi.DefaultOptions()
	opts.Seed = cfg.seed
	ix, err := hopi.Create(filepath.Join(dir, "p.hopi"), coll, opts)
	if err != nil {
		return replResult{}, err
	}
	defer ix.Close()
	pub, err := ix.StartPublisher(hopi.PublishHeartbeat(50 * time.Millisecond))
	if err != nil {
		return replResult{}, err
	}
	mux := http.NewServeMux()
	mux.Handle("GET /repl/stream", pub)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return replResult{}, err
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	defer srv.Close()
	defer pub.Close()
	streamURL := "http://" + ln.Addr().String() + "/repl/stream"

	fols := make([]*hopi.Index, followers)
	for i := range fols {
		f, err := hopi.Follow(streamURL, hopi.FollowTimeout(60*time.Second))
		if err != nil {
			return replResult{}, fmt.Errorf("follower %d: %w", i, err)
		}
		defer f.Close()
		fols[i] = f
	}

	// commitAt records when each batch sequence was acknowledged at the
	// primary; the lag samplers subtract it from the time a follower
	// reports the sequence applied. applyMu makes Apply and the
	// WALSize read one atomic step per writer — Apply already
	// serializes writers internally, so this costs nothing, and without
	// it an interleaved writer could read the other's sequence and
	// stamp the wrong (or no) commit time.
	var (
		applyMu  sync.Mutex
		commitMu sync.Mutex
		commitAt = map[uint64]time.Time{}
	)
	ctx, cancel := context.WithTimeout(context.Background(), cfg.duration)
	defer cancel()

	var (
		queries atomic.Int64
		batches atomic.Int64
		wg      sync.WaitGroup
		errMu   sync.Mutex
		failure error
	)
	fail := func(err error) {
		errMu.Lock()
		if failure == nil {
			failure = err
		}
		errMu.Unlock()
		cancel()
	}

	for w := 0; w < cfg.writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ctx.Err() == nil; i++ {
				name := fmt.Sprintf("repl-w%d-%05d.xml", w, i)
				target := fmt.Sprintf("pub%05d.xml", (w*7919+i)%cfg.docs)
				b := hopi.NewBatch()
				nd := hopi.NewDocument(name, "article")
				nd.AddElement(nd.Root(), "title")
				nd.AddElement(nd.Root(), "author")
				cite := nd.AddElement(nd.Root(), "cite")
				b.InsertDocument(nd)
				b.InsertLink(name, cite, target, 0)
				applyMu.Lock()
				_, err := ix.Apply(ctx, b)
				var seq uint64
				if err == nil {
					_, seq, _ = ix.WALSize()
				}
				applyMu.Unlock()
				if err != nil {
					if ctx.Err() == nil {
						fail(fmt.Errorf("apply: %w", err))
					}
					return
				}
				now := time.Now()
				commitMu.Lock()
				commitAt[seq] = now
				commitMu.Unlock()
				batches.Add(1)
				if cfg.writeInterval > 0 {
					select {
					case <-ctx.Done():
						return
					case <-time.After(cfg.writeInterval):
					}
				}
			}
		}(w)
	}

	// lag samplers: one per follower, polling the applied sequence
	var (
		lagMu      sync.Mutex
		lagSamples []time.Duration
	)
	for _, f := range fols {
		wg.Add(1)
		go func(f *hopi.Index) {
			defer wg.Done()
			var seen uint64
			t := time.NewTicker(time.Millisecond)
			defer t.Stop()
			for {
				st := f.ReplicaStatus()
				now := time.Now()
				for seq := seen + 1; seq <= st.AppliedSeq; seq++ {
					commitMu.Lock()
					at, ok := commitAt[seq]
					commitMu.Unlock()
					if ok {
						lagMu.Lock()
						lagSamples = append(lagSamples, now.Sub(at))
						lagMu.Unlock()
					}
				}
				seen = st.AppliedSeq
				select {
				case <-ctx.Done():
					return
				case <-t.C:
				}
			}
		}(f)
	}

	// readers: spread across the followers (or the primary when
	// followers == 0, the single-node baseline)
	targets := fols
	if followers == 0 {
		targets = []*hopi.Index{ix}
	}
	for _, target := range targets {
		for r := 0; r < cfg.readersPerNode; r++ {
			wg.Add(1)
			go func(target *hopi.Index) {
				defer wg.Done()
				for ctx.Err() == nil {
					snap := target.Snapshot()
					if _, err := snap.QueryCtx(ctx, cfg.expr); err != nil {
						if ctx.Err() == nil {
							fail(fmt.Errorf("query: %w", err))
						}
						return
					}
					queries.Add(1)
				}
			}(target)
		}
	}

	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)
	if failure != nil {
		return replResult{}, failure
	}

	res := replResult{Followers: followers}
	if s := elapsed.Seconds(); s > 0 {
		res.QueriesPerS = float64(queries.Load()) / s
		res.BatchesPerS = float64(batches.Load()) / s
	}
	lagMu.Lock()
	samples := append([]time.Duration(nil), lagSamples...)
	lagMu.Unlock()
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	res.LagSamples = len(samples)
	if n := len(samples); n > 0 {
		res.LagP50 = samples[n/2]
		res.LagP99 = samples[n*99/100]
	}
	return res, nil
}

// replExperiment runs the sweep over follower counts and renders it.
func replExperiment(cfg replConfig) (string, []replResult, error) {
	var (
		b    strings.Builder
		rows []replResult
	)
	fmt.Fprintf(&b, "read scaling via WAL-shipping replication (%d docs, %d writers every %s, %d readers/node, %s window, in-process)\n",
		cfg.docs, cfg.writers, cfg.writeInterval, cfg.readersPerNode, cfg.duration)
	fmt.Fprintf(&b, "  %-10s %14s %14s %12s %12s %10s\n", "followers", "queries/s", "batches/s", "lag p50", "lag p99", "samples")
	for _, n := range cfg.followerCounts {
		r, err := runRepl(cfg, n)
		if err != nil {
			return "", nil, fmt.Errorf("followers=%d: %w", n, err)
		}
		rows = append(rows, r)
		fmt.Fprintf(&b, "  %-10d %14.1f %14.1f %12s %12s %10d\n",
			r.Followers, r.QueriesPerS, r.BatchesPerS, r.LagP50.Round(time.Microsecond), r.LagP99.Round(time.Microsecond), r.LagSamples)
	}
	return b.String(), rows, nil
}
