package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"hopi"
	"hopi/internal/gen"
)

// memConfig parameterizes the storage-footprint experiment: the same
// collection indexed flat (in-memory slices) and segmented (sealed
// compressed files + mmap), comparing resident bytes, bytes/label,
// checkpoint and bootstrap wall time, and query latency.
type memConfig struct {
	docs    int
	seed    int64
	expr    string
	churn   int // maintenance batches applied before the timed checkpoint
	queries int // latency samples per mode
}

type memResult struct {
	Docs      int
	CoverSize int
	Entries   int

	FlatHeapBytes uint64 // heap after GC with only the flat index live
	SegHeapBytes  uint64 // same with only the segmented index live

	FlatLabelBytes int64 // in-memory label accounting (16 B/entry)
	SealedBytes    int64 // on-disk sealed stack
	Segments       int
	SegBytesPerLabel float64
	CompressionRatio float64 // FlatLabelBytes / SealedBytes
	Mmapped          bool

	CheckpointMs float64 // seal the churn delta into a segment
	ReopenMs     float64 // Open(path, Durable()) over the sealed store
	BootstrapMs  float64 // follower Follow() incl. file shipping

	// write-stall check: max single Apply latency on the primary while
	// the follower bootstraps, vs the same writer undisturbed
	ApplyBaselineMs  float64
	ApplyDuringBootMs float64

	FlatP50us, FlatP99us float64
	SegP50us, SegP99us   float64
}

func heapInUse() uint64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

func latencyUS(snap *hopi.Snapshot, expr string, n int) (p50, p99 float64, err error) {
	for i := 0; i < 3; i++ { // warmup: page in the mmap and fill decode caches
		if _, qerr := snap.Query(expr); qerr != nil {
			return 0, 0, qerr
		}
	}
	samples := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		t0 := time.Now()
		if _, qerr := snap.Query(expr); qerr != nil {
			return 0, 0, qerr
		}
		samples = append(samples, float64(time.Since(t0).Nanoseconds())/1e3)
	}
	sort.Float64s(samples)
	return samples[len(samples)/2], samples[len(samples)*99/100], nil
}

func churnBatch(w, i, docs int) *hopi.Batch {
	b := hopi.NewBatch()
	name := fmt.Sprintf("mem-w%d-%05d.xml", w, i)
	target := fmt.Sprintf("pub%05d.xml", (w*7919+i)%docs)
	nd := hopi.NewDocument(name, "article")
	nd.AddElement(nd.Root(), "title")
	nd.AddElement(nd.Root(), "author")
	cite := nd.AddElement(nd.Root(), "cite")
	b.InsertDocument(nd)
	b.InsertLink(name, cite, target, 0)
	return b
}

func runMem(cfg memConfig) (memResult, error) {
	var r memResult
	r.Docs = cfg.docs
	coll := hopi.WrapCollection(gen.DBLP(gen.DefaultDBLP(cfg.docs, cfg.seed)))
	opts := hopi.DefaultOptions()
	opts.WithDistance = true
	opts.Seed = cfg.seed

	// --- flat (in-memory slices) -----------------------------------
	base := heapInUse()
	flat, err := hopi.Build(coll, opts)
	if err != nil {
		return r, fmt.Errorf("flat build: %w", err)
	}
	snap := flat.Snapshot()
	labels := snap.Labels()
	r.CoverSize = snap.Size()
	r.Entries = labels.Entries
	r.FlatLabelBytes = int64(labels.Entries) * 16
	if h := heapInUse(); h > base {
		r.FlatHeapBytes = h - base
	}
	if r.FlatP50us, r.FlatP99us, err = latencyUS(snap, cfg.expr, cfg.queries); err != nil {
		return r, fmt.Errorf("flat query: %w", err)
	}
	snap = nil
	flat = nil

	// --- segmented ---------------------------------------------------
	dir, err := os.MkdirTemp("", "hopimem")
	if err != nil {
		return r, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "ix.hopi")
	base = heapInUse()
	// the second WrapCollection keeps the segmented index from sharing
	// (and thus hiding) the flat run's collection allocations
	coll2 := hopi.WrapCollection(gen.DBLP(gen.DefaultDBLP(cfg.docs, cfg.seed)))
	seg, err := hopi.Create(path, coll2, opts, hopi.Segments())
	if err != nil {
		return r, fmt.Errorf("segment create: %w", err)
	}
	for i := 0; i < cfg.churn; i++ {
		if _, err := seg.Apply(context.Background(), churnBatch(0, i, cfg.docs)); err != nil {
			seg.Close()
			return r, fmt.Errorf("churn %d: %w", i, err)
		}
	}
	t0 := time.Now()
	if err := seg.Checkpoint(); err != nil {
		seg.Close()
		return r, fmt.Errorf("checkpoint: %w", err)
	}
	r.CheckpointMs = float64(time.Since(t0).Microseconds()) / 1000

	st := seg.SegmentStats()
	r.SealedBytes = st.SealedBytes
	r.Segments = st.Segments
	r.SegBytesPerLabel = st.BytesPerLabel
	r.Mmapped = st.Mmapped
	if st.SealedBytes > 0 {
		r.CompressionRatio = float64(int64(st.LiveEntries)*16) / float64(st.SealedBytes)
	}
	if h := heapInUse(); h > base {
		r.SegHeapBytes = h - base
	}
	ssnap := seg.Snapshot()
	if r.SegP50us, r.SegP99us, err = latencyUS(ssnap, cfg.expr, cfg.queries); err != nil {
		seg.Close()
		return r, fmt.Errorf("segment query: %w", err)
	}

	// --- follower bootstrap (sealed files shipped verbatim) ----------
	// a paced writer keeps committing while the follower boots; the
	// max single-Apply latency shows whether the image cut stalls it
	applyOnce := func(i int) (time.Duration, error) {
		t := time.Now()
		_, err := seg.Apply(context.Background(), churnBatch(1, i, cfg.docs))
		return time.Since(t), err
	}
	var maxBase time.Duration
	for i := 0; i < 20; i++ {
		d, err := applyOnce(i)
		if err != nil {
			seg.Close()
			return r, err
		}
		if d > maxBase {
			maxBase = d
		}
	}
	r.ApplyBaselineMs = float64(maxBase.Microseconds()) / 1000

	pub, err := seg.StartPublisher()
	if err != nil {
		seg.Close()
		return r, err
	}
	mux := http.NewServeMux()
	mux.Handle("GET /repl/stream", pub)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		pub.Close()
		seg.Close()
		return r, err
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)

	stop := make(chan struct{})
	writeErr := make(chan error, 1)
	var maxBoot atomic.Int64
	go func() {
		for i := 20; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			d, err := applyOnce(i)
			if err != nil {
				writeErr <- err
				return
			}
			if int64(d) > maxBoot.Load() {
				maxBoot.Store(int64(d))
			}
		}
	}()
	t0 = time.Now()
	fol, err := hopi.Follow("http://"+ln.Addr().String()+"/repl/stream",
		hopi.FollowTimeout(60*time.Second), hopi.FollowDir(dir))
	if err != nil {
		close(stop)
		srv.Close()
		pub.Close()
		seg.Close()
		return r, fmt.Errorf("follow: %w", err)
	}
	r.BootstrapMs = float64(time.Since(t0).Microseconds()) / 1000
	close(stop)
	select {
	case err := <-writeErr:
		return r, err
	default:
	}
	r.ApplyDuringBootMs = float64(time.Duration(maxBoot.Load()).Microseconds()) / 1000
	fol.Close()
	srv.Close()
	pub.Close()
	if err := seg.Close(); err != nil {
		return r, fmt.Errorf("close: %w", err)
	}

	// --- durable reopen over the sealed stack ------------------------
	t0 = time.Now()
	re, err := hopi.Open(path, hopi.Durable())
	if err != nil {
		return r, fmt.Errorf("reopen: %w", err)
	}
	r.ReopenMs = float64(time.Since(t0).Microseconds()) / 1000
	return r, re.Close()
}

func renderMem(r memResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "collection: %d docs, cover |L| = %d (%d label entries)\n", r.Docs, r.CoverSize, r.Entries)
	fmt.Fprintf(&b, "  %-22s %12s %14s\n", "", "flat", "segments")
	fmt.Fprintf(&b, "  %-22s %12s %14s\n", "heap (resident)", fmtBytes(int64(r.FlatHeapBytes)), fmtBytes(int64(r.SegHeapBytes)))
	fmt.Fprintf(&b, "  %-22s %12s %14s  (%.2fx compression)\n", "label bytes",
		fmtBytes(r.FlatLabelBytes), fmtBytes(r.SealedBytes), r.CompressionRatio)
	fmt.Fprintf(&b, "  %-22s %12.1f %14.2f\n", "bytes/label", 16.0, r.SegBytesPerLabel)
	fmt.Fprintf(&b, "  %-22s %12.0f %14.0f\n", "query p50 (us)", r.FlatP50us, r.SegP50us)
	fmt.Fprintf(&b, "  %-22s %12.0f %14.0f\n", "query p99 (us)", r.FlatP99us, r.SegP99us)
	fmt.Fprintf(&b, "  sealed stack: %d segment(s), mmap=%v\n", r.Segments, r.Mmapped)
	fmt.Fprintf(&b, "  checkpoint (seal) %.1f ms, durable reopen %.1f ms, follower bootstrap %.1f ms\n",
		r.CheckpointMs, r.ReopenMs, r.BootstrapMs)
	fmt.Fprintf(&b, "  primary max Apply: %.1f ms alone, %.1f ms during bootstrap\n",
		r.ApplyBaselineMs, r.ApplyDuringBootMs)
	return b.String()
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
