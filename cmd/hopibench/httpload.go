package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hopi/internal/loadgen"
)

// httpLoad drives a running hopiserve with the mixed workload: Readers
// workers issuing GET /query and Writers workers issuing POST /docs
// (plus periodic DELETE /docs/{name} of their own documents). The
// server does the indexing work; this side only measures throughput.
func httpLoad(base string, cfg loadgen.Config) (loadgen.Result, error) {
	base = strings.TrimRight(base, "/")
	client := &http.Client{Timeout: 30 * time.Second}

	// Probe the server before unleashing the workers.
	resp, err := client.Get(base + "/stats")
	if err != nil {
		return loadgen.Result{}, fmt.Errorf("hopiserve not reachable: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return loadgen.Result{}, fmt.Errorf("GET /stats: %s", resp.Status)
	}

	ctx, cancel := context.WithTimeout(context.Background(), cfg.Duration)
	defer cancel()

	var (
		queries, batches, inserted, deleted, matches int64
		errMu                                        sync.Mutex
		firstErr                                     error
		wg                                           sync.WaitGroup
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		cancel()
	}
	queryURL := base + "/query?expr=" + url.QueryEscape(cfg.Expr)

	start := time.Now()
	for r := 0; r < cfg.Readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				req, _ := http.NewRequestWithContext(ctx, http.MethodGet, queryURL, nil)
				resp, err := client.Do(req)
				if err != nil {
					if ctx.Err() != nil {
						return
					}
					fail(err)
					return
				}
				var body struct {
					Count int64 `json:"count"`
				}
				decErr := json.NewDecoder(resp.Body).Decode(&body)
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					fail(fmt.Errorf("GET /query: %s", resp.Status))
					return
				}
				if decErr != nil {
					fail(fmt.Errorf("GET /query: decode: %w", decErr))
					return
				}
				atomic.AddInt64(&queries, 1)
				atomic.AddInt64(&matches, body.Count)
			}
		}()
	}
	for w := 0; w < cfg.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var mine []string
			for i := 0; ctx.Err() == nil; i++ {
				name := fmt.Sprintf("bench-w%d-%05d.xml", w, i)
				doc := `<article><title>load</title><author>bench</author></article>`
				u := base + "/docs?name=" + url.QueryEscape(name)
				req, _ := http.NewRequestWithContext(ctx, http.MethodPost, u, strings.NewReader(doc))
				req.Header.Set("Content-Type", "application/xml")
				resp, err := client.Do(req)
				if err != nil {
					if ctx.Err() != nil {
						return
					}
					fail(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusCreated {
					fail(fmt.Errorf("POST /docs: %s", resp.Status))
					return
				}
				mine = append(mine, name)
				atomic.AddInt64(&inserted, 1)
				atomic.AddInt64(&batches, 1)
				if len(mine) > 8 && i%4 == 0 {
					victim := mine[0]
					mine = mine[1:]
					req, _ := http.NewRequestWithContext(ctx, http.MethodDelete,
						base+"/docs/"+url.PathEscape(victim), nil)
					resp, err := client.Do(req)
					if err != nil {
						if ctx.Err() != nil {
							return
						}
						fail(err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						fail(fmt.Errorf("DELETE /docs/%s: %s", victim, resp.Status))
						return
					}
					atomic.AddInt64(&deleted, 1)
					atomic.AddInt64(&batches, 1)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return loadgen.Result{}, firstErr
	}
	res := loadgen.Result{
		Duration:     elapsed,
		Queries:      queries,
		Batches:      batches,
		Inserted:     inserted,
		Deleted:      deleted,
		QueryResults: matches,
	}
	if s := elapsed.Seconds(); s > 0 {
		res.QueriesPerS = float64(queries) / s
		res.BatchesPerS = float64(batches) / s
	}
	return res, nil
}
