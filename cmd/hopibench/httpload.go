package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hopi/internal/loadgen"
)

// httpLoad drives a running deployment with the mixed workload over
// HTTP: Readers workers issuing GET /query and Writers workers issuing
// POST /docs (plus periodic DELETE /docs/{name} of their own
// documents). urls is comma-separated: the first endpoint takes the
// writes (a hopiserve primary or a hopirouter), queries spread across
// all of them (replicas scale reads). The client is the
// loadgen.NodeClient, so 503s from lagging replicas or restarting
// shards are retried with capped backoff, and page-walk resume tokens
// route to a node at or past the token's issue epoch. Every fourth
// read is a paged walk exercising that token routing.
func httpLoad(urls string, cfg loadgen.Config) (loadgen.Result, error) {
	var nodes []string
	for _, u := range strings.Split(urls, ",") {
		if u = strings.TrimSpace(u); u != "" {
			nodes = append(nodes, strings.TrimRight(u, "/"))
		}
	}
	if len(nodes) == 0 {
		return loadgen.Result{}, fmt.Errorf("no node URLs given")
	}

	// Probe every node before unleashing the workers.
	probe := &http.Client{Timeout: 10 * time.Second}
	for _, n := range nodes {
		resp, err := probe.Get(n + "/healthz")
		if err != nil {
			return loadgen.Result{}, fmt.Errorf("node %s not reachable: %w", n, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return loadgen.Result{}, fmt.Errorf("GET %s/healthz: %s", n, resp.Status)
		}
	}
	client := loadgen.NewNodeClient(nodes, 30*time.Second)

	ctx, cancel := context.WithTimeout(context.Background(), cfg.Duration)
	defer cancel()

	var (
		queries, batches, inserted, deleted, matches int64
		errMu                                        sync.Mutex
		firstErr                                     error
		wg                                           sync.WaitGroup
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		cancel()
	}

	// Per-run name prefix: against a durable deployment, documents from
	// an earlier (possibly aborted) run survive and fresh inserts would
	// 409 on the same names.
	runID := time.Now().UnixNano() % 1_000_000

	start := time.Now()
	for r := 0; r < cfg.Readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ctx.Err() == nil; i++ {
				if i%4 == 3 {
					// paged walk: follow the resume tokens a few hops
					token := ""
					for hop := 0; hop < 4; hop++ {
						page, err := client.Query(ctx, cfg.Expr, 16, false, token)
						if err != nil {
							var stale *loadgen.StalePageError
							if errors.As(err, &stale) {
								// a concurrent write retired the token; expected —
								// abandon the walk, the next iteration starts fresh
								break
							}
							if ctx.Err() == nil {
								fail(fmt.Errorf("paged query: %w", err))
							}
							return
						}
						atomic.AddInt64(&queries, 1)
						atomic.AddInt64(&matches, page.Count)
						if token = page.NextPageToken; token == "" {
							break
						}
					}
					continue
				}
				page, err := client.Query(ctx, cfg.Expr, 0, false, "")
				if err != nil {
					if ctx.Err() == nil {
						fail(fmt.Errorf("query: %w", err))
					}
					return
				}
				atomic.AddInt64(&queries, 1)
				atomic.AddInt64(&matches, page.Count)
			}
		}(r)
	}
	for w := 0; w < cfg.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var mine []string
			for i := 0; ctx.Err() == nil; i++ {
				name := fmt.Sprintf("bench-%06d-w%d-%05d.xml", runID, w, i)
				doc := `<article><title>load</title><author>bench</author></article>`
				if err := client.InsertDoc(ctx, name, doc); err != nil {
					if ctx.Err() == nil {
						fail(fmt.Errorf("insert %s: %w", name, err))
					}
					return
				}
				mine = append(mine, name)
				atomic.AddInt64(&inserted, 1)
				atomic.AddInt64(&batches, 1)
				if len(mine) > 8 && i%4 == 0 {
					victim := mine[0]
					mine = mine[1:]
					if err := client.DeleteDoc(ctx, victim); err != nil {
						if ctx.Err() == nil {
							fail(fmt.Errorf("delete %s: %w", victim, err))
						}
						return
					}
					atomic.AddInt64(&deleted, 1)
					atomic.AddInt64(&batches, 1)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return loadgen.Result{}, firstErr
	}
	res := loadgen.Result{
		Duration:     elapsed,
		Nodes:        len(nodes),
		Queries:      queries,
		Batches:      batches,
		Inserted:     inserted,
		Deleted:      deleted,
		QueryResults: matches,
	}
	if s := elapsed.Seconds(); s > 0 {
		res.QueriesPerS = float64(queries) / s
		res.BatchesPerS = float64(batches) / s
	}
	return res, nil
}
