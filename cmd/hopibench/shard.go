package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hopi"
	"hopi/internal/gen"
	"hopi/internal/shardrouter"
)

// shardConfig parameterizes the sharded-write-scaling experiment: a
// DBLP-like collection split across N durable shard primaries behind a
// router, writers inserting citation documents through the router
// (each insert WAL-committed at its shard), readers running
// descendant-axis queries through the distributed join.
type shardConfig struct {
	docs        int
	seed        int64
	duration    time.Duration
	writers     int
	readers     int
	expr        string
	shardCounts []int
}

// shardResult is one row of the sweep: aggregate write and query
// throughput plus query latency percentiles at a given shard count,
// for the mixed read+write window and for the read-only window that
// follows it (writes paused, closure cache warm — the steady-state
// read path).
type shardResult struct {
	Shards         int
	CrossLinks     int
	BatchesPerS    float64
	QueriesPerS    float64
	QueryP50       time.Duration
	QueryP99       time.Duration
	ROQueriesPerS  float64
	ROQueryP50     time.Duration
	ROQueryP99     time.Duration
	ClosureHitRate float64
}

// runShard measures one shard count: the collection is partitioned
// with the closure-budget partitioner, each part becomes its own
// durable index, and a router over in-process shard connections takes
// the full read+write workload. Writes to different shards commit
// their WAL fsyncs in parallel — that is the scaling being measured,
// so the offered write load (cfg.writers × numShards workers) grows
// with the capacity under test, as in any saturation sweep. Readers
// run limit-25 queries: limit pushdown keeps each evaluation short
// enough to pin a consistent cut between write bursts.
func runShard(cfg shardConfig, numShards int) (shardResult, error) {
	dir, err := os.MkdirTemp("", "hopishard")
	if err != nil {
		return shardResult{}, err
	}
	defer os.RemoveAll(dir)

	coll := hopi.WrapCollection(gen.DBLP(gen.DefaultDBLP(cfg.docs, cfg.seed)))
	opts := hopi.DefaultOptions()
	opts.Seed = cfg.seed
	opts.WithDistance = true
	m, err := hopi.BuildShardMap(coll, numShards, opts)
	if err != nil {
		return shardResult{}, err
	}
	parts := hopi.SplitCollection(coll, m)
	conns := make([]hopi.ShardConn, numShards)
	for i, p := range parts {
		ix, err := hopi.Create(filepath.Join(dir, fmt.Sprintf("shard%d", i)), p, opts)
		if err != nil {
			return shardResult{}, fmt.Errorf("shard %d: %w", i, err)
		}
		defer ix.Close()
		conns[i] = hopi.NewLocalShard(fmt.Sprintf("s%d", i), ix)
	}
	router, err := hopi.NewRouter(conns, m, "")
	if err != nil {
		return shardResult{}, err
	}

	ctx, cancel := context.WithTimeout(context.Background(), cfg.duration)
	defer cancel()
	var (
		queries atomic.Int64
		batches atomic.Int64
		wg      sync.WaitGroup
		errMu   sync.Mutex
		failure error
		latMu   sync.Mutex
		lats    []time.Duration
	)
	fail := func(err error) {
		errMu.Lock()
		if failure == nil {
			failure = err
		}
		errMu.Unlock()
		cancel()
	}

	for w := 0; w < cfg.writers*numShards; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ctx.Err() == nil; i++ {
				name := fmt.Sprintf("shard-w%d-%05d.xml", w, i)
				target := fmt.Sprintf("pub%05d.xml", (w*7919+i)%cfg.docs)
				xml := fmt.Sprintf(`<article><title>t</title><author/><cite href=%q/></article>`, target)
				if _, err := router.InsertXML(ctx, name, []byte(xml)); err != nil {
					if ctx.Err() == nil {
						fail(fmt.Errorf("insert: %w", err))
					}
					return
				}
				batches.Add(1)
			}
		}(w)
	}

	for r := 0; r < cfg.readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				start := time.Now()
				_, err := router.Query(ctx, cfg.expr, hopi.RouterQueryOptions{Limit: 25})
				if err != nil {
					var su *shardrouter.ShardUnavailableError
					if errors.As(err, &su) || ctx.Err() != nil {
						// a write burst moved every retry's snapshot out from
						// under the query; count nothing and try again
						continue
					}
					fail(fmt.Errorf("query: %w", err))
					return
				}
				queries.Add(1)
				latMu.Lock()
				lats = append(lats, time.Since(start))
				latMu.Unlock()
			}
		}()
	}

	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)
	if failure != nil {
		return shardResult{}, failure
	}

	res := shardResult{Shards: numShards, CrossLinks: len(router.Map().CrossLinks)}
	if s := elapsed.Seconds(); s > 0 {
		res.BatchesPerS = float64(batches.Load()) / s
		res.QueriesPerS = float64(queries.Load()) / s
	}
	latMu.Lock()
	samples := append([]time.Duration(nil), lats...)
	latMu.Unlock()
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	if n := len(samples); n > 0 {
		res.QueryP50 = samples[n/2]
		res.QueryP99 = samples[n*99/100]
	}

	// Read-only window: writers stopped, so every query pins the same
	// cut and the router's closure cache can serve the endpoint-graph
	// RPCs — the steady-state read mix. Counter deltas over the window
	// give the cache hit rate.
	ctrBefore := router.Unwrap().Counters()
	roCtx, roCancel := context.WithTimeout(context.Background(), cfg.duration)
	defer roCancel()
	var (
		roQueries atomic.Int64
		roWG      sync.WaitGroup
		roLatMu   sync.Mutex
		roLats    []time.Duration
	)
	for r := 0; r < cfg.readers; r++ {
		roWG.Add(1)
		go func() {
			defer roWG.Done()
			for roCtx.Err() == nil {
				start := time.Now()
				_, err := router.Query(roCtx, cfg.expr, hopi.RouterQueryOptions{Limit: 25})
				if err != nil {
					if roCtx.Err() != nil {
						return
					}
					fail(fmt.Errorf("read-only query: %w", err))
					roCancel()
					return
				}
				roQueries.Add(1)
				roLatMu.Lock()
				roLats = append(roLats, time.Since(start))
				roLatMu.Unlock()
			}
		}()
	}
	roStart := time.Now()
	roWG.Wait()
	roElapsed := time.Since(roStart)
	if failure != nil {
		return shardResult{}, failure
	}
	if s := roElapsed.Seconds(); s > 0 {
		res.ROQueriesPerS = float64(roQueries.Load()) / s
	}
	sort.Slice(roLats, func(i, j int) bool { return roLats[i] < roLats[j] })
	if n := len(roLats); n > 0 {
		res.ROQueryP50 = roLats[n/2]
		res.ROQueryP99 = roLats[n*99/100]
	}
	ctrAfter := router.Unwrap().Counters()
	hits := ctrAfter.ClosureCacheHits - ctrBefore.ClosureCacheHits
	misses := ctrAfter.ClosureCacheMisses - ctrBefore.ClosureCacheMisses
	if hits+misses > 0 {
		res.ClosureHitRate = float64(hits) / float64(hits+misses)
	}
	// With cross links present and repeated identical queries against a
	// quiescent cut, a cold cache on every query means the epoch keying
	// is broken — fail loudly rather than report a silent regression.
	if res.CrossLinks > 0 && roQueries.Load() >= 2 && hits == 0 {
		return shardResult{}, fmt.Errorf("shards=%d: closure cache ineffective: %d read-only queries, 0 cache hits (misses %d)",
			numShards, roQueries.Load(), misses)
	}
	return res, nil
}

// shardExperiment runs the sweep over shard counts and renders it.
func shardExperiment(cfg shardConfig) (string, []shardResult, error) {
	var (
		b    strings.Builder
		rows []shardResult
	)
	fmt.Fprintf(&b, "write scaling via sharded primaries (%d docs, %d writers/shard, %d readers on %q limit 25, %s mixed window + %s read-only window, durable shards, in-process router)\n",
		cfg.docs, cfg.writers, cfg.readers, cfg.expr, cfg.duration, cfg.duration)
	fmt.Fprintf(&b, "  %-8s %12s %14s %14s %12s %12s %14s %12s %12s %8s\n",
		"shards", "crosslinks", "batches/s", "queries/s", "query p50", "query p99",
		"ro queries/s", "ro p50", "ro p99", "hit%")
	for _, n := range cfg.shardCounts {
		r, err := runShard(cfg, n)
		if err != nil {
			return "", nil, fmt.Errorf("shards=%d: %w", n, err)
		}
		rows = append(rows, r)
		fmt.Fprintf(&b, "  %-8d %12d %14.1f %14.1f %12s %12s %14.1f %12s %12s %8.1f\n",
			r.Shards, r.CrossLinks, r.BatchesPerS, r.QueriesPerS,
			r.QueryP50.Round(time.Microsecond), r.QueryP99.Round(time.Microsecond),
			r.ROQueriesPerS, r.ROQueryP50.Round(time.Microsecond), r.ROQueryP99.Round(time.Microsecond),
			100*r.ClosureHitRate)
	}
	return b.String(), rows, nil
}
