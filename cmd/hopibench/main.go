// Command hopibench regenerates the paper's evaluation (§7): Table 1,
// the §7.2 centralized baseline, Table 2, the §7.3 maintenance
// experiments, the INEX build, and the distance/preselection/weights
// ablations — on synthetic collections shaped like the originals. It
// also carries a load-generator mode measuring queries/sec under
// concurrent maintenance, in-process or against a running hopiserve.
//
// Usage:
//
//	hopibench                        # everything except the slow centralized run
//	hopibench -exp table2            # one experiment
//	hopibench -exp all -docs 620     # includes centralized (~2 min)
//	hopibench -docs 300 -seed 7      # smaller, different seed
//	hopibench -exp load              # mixed query+maintenance workload, in-process
//	hopibench -exp load -url http://localhost:8080   # same, against hopiserve
//	hopibench -exp load -store /tmp/bench.hopi       # durable vs in-memory comparison
//	hopibench -exp load -json BENCH_load.json        # machine-readable results
//
// Experiments: table1, centralized, table2, maintenance, inex,
// distance, preselect, weights, balance, query, load, repl, shard,
// mem, watch, all, default. The watch experiment (hopibench -exp
// watch -json BENCH_watch.json) sweeps subscriber counts and batch
// pacing for the live-query tier and compares per-notification delta
// bytes against polling a full re-read, with notify latency
// percentiles. The repl experiment sweeps follower counts for
// the WAL-shipping replication tier (see -repl-followers) and records
// queries/sec and p50/p99 replication lag per count. The mem
// experiment (hopibench -exp mem -json BENCH_mem.json) indexes the
// same collection flat and segment-backed and compares resident
// bytes, bytes/label, seal/reopen/bootstrap wall time, and query
// latency percentiles.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"hopi/internal/experiments"
	"hopi/internal/loadgen"
)

// benchResult is one machine-readable measurement, appended to the
// file given with -json so performance can be tracked across commits.
type benchResult struct {
	Name      string  `json:"name"`
	NsPerOp   float64 `json:"nsPerOp,omitempty"`
	QPS       float64 `json:"qps,omitempty"`
	BatchesPS float64 `json:"batchesPerSec,omitempty"`
	CoverSize int     `json:"coverSize,omitempty"`
	WALBytes  int64   `json:"walBytes,omitempty"`
	Durable   bool    `json:"durable,omitempty"`
	// Speedup relates a measurement to its baseline (e.g. the
	// set-at-a-time evaluator vs the pairwise one on the same query).
	Speedup float64 `json:"speedup,omitempty"`
	// replication experiment: follower count and replication lag
	Followers  int     `json:"followers,omitempty"`
	LagP50Ms   float64 `json:"lagP50Ms,omitempty"`
	LagP99Ms   float64 `json:"lagP99Ms,omitempty"`
	LagSamples int     `json:"lagSamples,omitempty"`
	// sharding experiment: shard count and query latency percentiles
	Shards     int     `json:"shards,omitempty"`
	QueryP50Ms float64 `json:"queryP50Ms,omitempty"`
	QueryP99Ms float64 `json:"queryP99Ms,omitempty"`
	// sharding read-only window: router closure-cache hit rate
	CacheHitRate float64 `json:"closureCacheHitRate,omitempty"`
	// storage experiment (-exp mem): resident heap attributable to the
	// index, label bytes (in-memory accounting or sealed files),
	// bytes/label, and the segment life-cycle wall times
	HeapBytes     int64   `json:"heapBytes,omitempty"`
	LabelBytes    int64   `json:"labelBytes,omitempty"`
	BytesPerLabel float64 `json:"bytesPerLabel,omitempty"`
	CheckpointMs  float64 `json:"checkpointMs,omitempty"`
	ReopenMs      float64 `json:"reopenMs,omitempty"`
	BootstrapMs   float64 `json:"bootstrapMs,omitempty"`
	MaxApplyMs    float64 `json:"maxApplyDuringBootstrapMs,omitempty"`
	// live-query experiment (-exp watch): subscriber count, delta
	// notifications delivered, notify latency (Apply → event receipt),
	// and the payload comparison against polling a full re-read
	Subscribers         int     `json:"subscribers,omitempty"`
	Notifications       int64   `json:"notifications,omitempty"`
	CoalescedBatches    int64   `json:"coalescedBatches,omitempty"`
	NotifyP50Ms         float64 `json:"notifyP50Ms,omitempty"`
	NotifyP99Ms         float64 `json:"notifyP99Ms,omitempty"`
	DeltaBytesPerNotify float64 `json:"deltaBytesPerNotify,omitempty"`
	FullResultBytes     int64   `json:"fullResultBytes,omitempty"`
	IncrementalRounds   uint64  `json:"incrementalRounds,omitempty"`
	FullRerunRounds     uint64  `json:"fullRerunRounds,omitempty"`
	// Runtime is the Go heap at the moment the row was recorded, so a
	// throughput regression can be told apart from a memory regression
	// in the same BENCH_*.json history.
	Runtime runtimeStats `json:"runtime"`
}

// runtimeStats is a runtime.ReadMemStats snapshot taken when a result
// row is recorded (i.e. right after its experiment finished).
type runtimeStats struct {
	HeapInuseBytes  uint64  `json:"heapInuseBytes"`
	TotalAllocBytes uint64  `json:"totalAllocBytes"`
	NumGC           uint32  `json:"numGC"`
	GCPauseP99Ms    float64 `json:"gcPauseP99Ms"`
}

// readRuntimeStats samples the runtime. The pause p99 comes from the
// runtime's ring of the last 256 GC pauses — enough history to cover
// one experiment between recordings.
func readRuntimeStats() runtimeStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return runtimeStats{
		HeapInuseBytes:  ms.HeapInuse,
		TotalAllocBytes: ms.TotalAlloc,
		NumGC:           ms.NumGC,
		GCPauseP99Ms:    gcPauseP99(&ms),
	}
}

func gcPauseP99(ms *runtime.MemStats) float64 {
	n := int(ms.NumGC)
	if n == 0 {
		return 0
	}
	if n > len(ms.PauseNs) {
		n = len(ms.PauseNs)
	}
	pauses := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		pauses = append(pauses, ms.PauseNs[(int(ms.NumGC)-1-i)%len(ms.PauseNs)])
	}
	sort.Slice(pauses, func(i, j int) bool { return pauses[i] < pauses[j] })
	idx := len(pauses) * 99 / 100
	if idx >= len(pauses) {
		idx = len(pauses) - 1
	}
	return float64(pauses[idx]) / 1e6
}

func main() {
	var (
		exp      = flag.String("exp", "default", "comma-separated experiments (table1,centralized,table2,maintenance,inex,distance,preselect,weights,balance,query,load,repl,shard,mem,watch,all,default)")
		docs     = flag.Int("docs", 620, "DBLP-like document count (paper: 6210)")
		inexDocs = flag.Int("inexdocs", 122, "INEX-like document count (paper: 12232)")
		inexEls  = flag.Int("inexels", 950, "INEX-like mean elements per document (paper: ~986)")
		seed     = flag.Int64("seed", 42, "generator and build seed")

		url       = flag.String("url", "", "comma-separated node URLs for -exp load (first takes writes: a hopiserve primary or hopirouter; the rest serve reads; empty: run in-process)")
		loadDur   = flag.Duration("load-dur", 3*time.Second, "load-generator duration")
		readers   = flag.Int("load-readers", 4, "concurrent query workers")
		writers   = flag.Int("load-writers", 2, "concurrent maintenance workers")
		loadExpr  = flag.String("load-expr", "//article//author", "path expression the query workers evaluate")
		store     = flag.String("store", "", "for -exp load: also run the workload against a durable store at this path and report both")
		replFols  = flag.String("repl-followers", "0,1,2,4", "for -exp repl: comma-separated follower counts to sweep (0 = single-node baseline)")
		shardCnts = flag.String("shard-counts", "1,2,4", "for -exp shard: comma-separated shard counts to sweep (1 = unsharded baseline)")
		replWrite = flag.Duration("repl-write-interval", 10*time.Millisecond, "for -exp repl: pacing between a writer's batches (0 = write as fast as possible and measure queue growth)")
		jsonOut   = flag.String("json", "", "write machine-readable results (name, ns/op, qps, cover size) to this file")
		memDocs   = flag.Int("mem-docs", 10000, "for -exp mem: DBLP-like document count (the storage comparison needs scale to matter)")
		memChurn  = flag.Int("mem-churn", 200, "for -exp mem: maintenance batches applied before the timed seal checkpoint")
		memQs     = flag.Int("mem-queries", 200, "for -exp mem: query latency samples per storage mode")

		watchChurn   = flag.String("watch-churn", "10ms,2ms,0s", "for -exp watch: comma-separated batch pacing intervals, loosest (low churn) to tightest (0 = apply as fast as possible)")
		watchSubs    = flag.String("watch-subs", "1,8", "for -exp watch: comma-separated subscriber counts to sweep")
		watchBatches = flag.Int("watch-batches", 200, "for -exp watch: maintenance batches applied per cell")
	)
	flag.Parse()

	var jsonResults []benchResult
	// record stamps each row with the runtime snapshot of the moment it
	// was produced, then appends it to the -json output.
	record := func(rows ...benchResult) {
		rt := readRuntimeStats()
		for i := range rows {
			rows[i].Runtime = rt
		}
		jsonResults = append(jsonResults, rows...)
	}

	cfg := experiments.Config{
		DBLPDocs: *docs, INEXDocs: *inexDocs, INEXMeanElements: *inexEls, Seed: *seed,
	}
	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	if want["all"] {
		for _, e := range []string{"table1", "centralized", "table2", "maintenance", "inex", "distance", "preselect", "weights", "balance", "query", "load", "repl", "shard", "mem", "watch"} {
			want[e] = true
		}
	}
	if want["default"] {
		for _, e := range []string{"table1", "table2", "maintenance", "inex", "distance", "preselect", "weights", "balance", "query"} {
			want[e] = true
		}
	}

	run := func(name, title string, fn func() (string, error)) {
		if !want[name] {
			return
		}
		fmt.Printf("=== %s ===\n", title)
		out, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "hopibench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}

	run("table1", "Table 1: collection features", func() (string, error) {
		return experiments.RenderTable1(experiments.Table1(cfg)), nil
	})
	run("centralized", "§7.2: centralized cover (no partitioning; slow)", func() (string, error) {
		r, err := experiments.Centralized(cfg)
		if err != nil {
			return "", err
		}
		return experiments.RenderCentralized(r), nil
	})
	run("table2", "Table 2: index build time and size", func() (string, error) {
		rows, err := experiments.Table2(cfg)
		if err != nil {
			return "", err
		}
		return experiments.RenderTable2(rows), nil
	})
	run("maintenance", "§7.3: index maintenance", func() (string, error) {
		r, err := experiments.Maintenance(cfg)
		if err != nil {
			return "", err
		}
		return experiments.RenderMaintenance(r), nil
	})
	run("inex", "§7.2: INEX build", func() (string, error) {
		r, err := experiments.INEXBuild(cfg)
		if err != nil {
			return "", err
		}
		return experiments.RenderINEX(r), nil
	})
	run("distance", "§5: distance-aware index overhead", func() (string, error) {
		r, err := experiments.DistanceOverhead(cfg)
		if err != nil {
			return "", err
		}
		return experiments.RenderDistance(r), nil
	})
	run("preselect", "§4.2: center preselection", func() (string, error) {
		r, err := experiments.Preselect(cfg)
		if err != nil {
			return "", err
		}
		return experiments.RenderPreselect(r), nil
	})
	run("weights", "§4.3: edge-weight schemes", func() (string, error) {
		r, err := experiments.WeightsAblation(cfg)
		if err != nil {
			return "", err
		}
		return experiments.RenderWeights(r), nil
	})
	run("balance", "§4.3: partition balance / parallel speedup bound", func() (string, error) {
		rows, err := experiments.Balance(cfg)
		if err != nil {
			return "", err
		}
		return experiments.RenderBalance(rows), nil
	})
	run("query", "query micro-benchmark (extension)", func() (string, error) {
		r, err := experiments.QueryMicro(cfg)
		if err != nil {
			return "", err
		}
		record(
			benchResult{Name: "query/reaches", NsPerOp: 1e9 / r.ReachPerSec, QPS: r.ReachPerSec},
			benchResult{Name: "query/distance", NsPerOp: 1e9 / r.DistPerSec, QPS: r.DistPerSec})
		qe, err := experiments.QueryEval(cfg)
		if err != nil {
			return "", err
		}
		for _, row := range qe.Rows {
			name := row.Expr
			if row.Ranked {
				name += "(ranked)"
			}
			record(
				benchResult{Name: "query/pairwise:" + name, QPS: row.PairQPS, NsPerOp: 1e9 / row.PairQPS},
				benchResult{Name: "query/semijoin:" + name, QPS: row.SemiQPS, NsPerOp: 1e9 / row.SemiQPS, Speedup: row.Speedup})
		}
		for _, row := range qe.LimitRows {
			name := row.Expr
			if row.Ranked {
				name += "(ranked)"
			}
			// speedup relates the limit-pushdown cursor to the same
			// query fully materialized on the same engine
			record(
				benchResult{Name: fmt.Sprintf("query/limit%d:%s", row.Limit, name),
					QPS: row.LimitQPS, NsPerOp: 1e9 / row.LimitQPS, Speedup: row.Speedup})
		}
		return experiments.RenderQueryMicro(r) + experiments.RenderQueryEval(qe), nil
	})
	run("load", "mixed query + maintenance workload (extension)", func() (string, error) {
		lc := loadgen.Config{
			Docs: *docs, Seed: *seed,
			Readers: *readers, Writers: *writers,
			Duration: *loadDur, Expr: *loadExpr,
		}
		if *url != "" {
			r, err := httpLoad(*url, lc)
			if err != nil {
				return "", err
			}
			record(loadJSON("load/http", r))
			return loadgen.Render(r), nil
		}
		mem, err := loadgen.ServeLoad(lc)
		if err != nil {
			return "", err
		}
		record(loadJSON("load/memory", mem))
		out := loadgen.Render(mem)
		if *store != "" {
			dc := lc
			dc.StorePath = *store
			dur, err := loadgen.ServeLoad(dc)
			if err != nil {
				return "", err
			}
			record(loadJSON("load/durable", dur))
			out += loadgen.Render(dur)
			if dur.BatchesPerS > 0 {
				out += fmt.Sprintf("  durability cost: %.2fx batch throughput (%.1f → %.1f batches/s), %.2fx query throughput\n",
					mem.BatchesPerS/dur.BatchesPerS, mem.BatchesPerS, dur.BatchesPerS,
					safeRatio(mem.QueriesPerS, dur.QueriesPerS))
			}
		}
		return out, nil
	})
	run("shard", "write scaling: sharded primaries behind a router (extension)", func() (string, error) {
		var counts []int
		for _, s := range strings.Split(*shardCnts, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 {
				return "", fmt.Errorf("bad -shard-counts entry %q", s)
			}
			counts = append(counts, n)
		}
		out, rows, err := shardExperiment(shardConfig{
			docs: *docs, seed: *seed,
			duration: *loadDur,
			writers:  *writers, readers: *readers,
			expr:        *loadExpr,
			shardCounts: counts,
		})
		if err != nil {
			return "", err
		}
		for _, r := range rows {
			record(benchResult{
				Name:       fmt.Sprintf("shard/shards=%d", r.Shards),
				QPS:        r.QueriesPerS,
				BatchesPS:  r.BatchesPerS,
				Shards:     r.Shards,
				QueryP50Ms: float64(r.QueryP50.Microseconds()) / 1000,
				QueryP99Ms: float64(r.QueryP99.Microseconds()) / 1000,
			})
			record(benchResult{
				Name:         fmt.Sprintf("shard/readonly/shards=%d", r.Shards),
				QPS:          r.ROQueriesPerS,
				Shards:       r.Shards,
				QueryP50Ms:   float64(r.ROQueryP50.Microseconds()) / 1000,
				QueryP99Ms:   float64(r.ROQueryP99.Microseconds()) / 1000,
				CacheHitRate: r.ClosureHitRate,
			})
		}
		return out, nil
	})
	run("mem", "storage footprint: flat in-memory vs compressed segments (extension)", func() (string, error) {
		r, err := runMem(memConfig{
			docs: *memDocs, seed: *seed, expr: *loadExpr,
			churn: *memChurn, queries: *memQs,
		})
		if err != nil {
			return "", err
		}
		record(
			benchResult{Name: "mem/flat", CoverSize: r.CoverSize,
				HeapBytes: int64(r.FlatHeapBytes), LabelBytes: r.FlatLabelBytes,
				BytesPerLabel: 16,
				QueryP50Ms:    r.FlatP50us / 1000, QueryP99Ms: r.FlatP99us / 1000},
			benchResult{Name: "mem/segments", CoverSize: r.CoverSize,
				HeapBytes: int64(r.SegHeapBytes), LabelBytes: r.SealedBytes,
				BytesPerLabel: r.SegBytesPerLabel, Speedup: r.CompressionRatio,
				QueryP50Ms: r.SegP50us / 1000, QueryP99Ms: r.SegP99us / 1000,
				CheckpointMs: r.CheckpointMs, ReopenMs: r.ReopenMs,
				BootstrapMs: r.BootstrapMs, MaxApplyMs: r.ApplyDuringBootMs})
		return renderMem(r), nil
	})
	run("watch", "live queries: delta notifications vs polling (extension)", func() (string, error) {
		var intervals []time.Duration
		for _, s := range strings.Split(*watchChurn, ",") {
			d, err := time.ParseDuration(strings.TrimSpace(s))
			if err != nil || d < 0 {
				return "", fmt.Errorf("bad -watch-churn entry %q", s)
			}
			intervals = append(intervals, d)
		}
		var subs []int
		for _, s := range strings.Split(*watchSubs, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 {
				return "", fmt.Errorf("bad -watch-subs entry %q", s)
			}
			subs = append(subs, n)
		}
		var (
			out           strings.Builder
			totalNotified int64
		)
		for _, iv := range intervals {
			for _, ns := range subs {
				r, err := loadgen.WatchLoad(loadgen.WatchConfig{
					Docs: *docs, Seed: *seed, Expr: *loadExpr,
					Subscribers: ns, Batches: *watchBatches, Interval: iv,
				})
				if err != nil {
					return "", fmt.Errorf("churn=%s subs=%d: %w", iv, ns, err)
				}
				totalNotified += r.Notifications
				fmt.Fprintf(&out, "churn interval %s:\n%s", iv, loadgen.RenderWatch(r))
				perNotify := 0.0
				if r.Notifications > 0 {
					perNotify = float64(r.DeltaBytes) / float64(r.Notifications)
				}
				record(benchResult{
					Name:                fmt.Sprintf("watch/churn=%s/subs=%d", iv, ns),
					Subscribers:         ns,
					Notifications:       r.Notifications,
					CoalescedBatches:    r.Coalesced,
					NotifyP50Ms:         float64(r.NotifyP50.Microseconds()) / 1000,
					NotifyP99Ms:         float64(r.NotifyP99.Microseconds()) / 1000,
					DeltaBytesPerNotify: perNotify,
					FullResultBytes:     r.FullResultBytes,
					IncrementalRounds:   r.Incremental,
					FullRerunRounds:     r.FullRuns,
				})
			}
		}
		// a live-query tier that never delivers a delta is broken, not slow
		if totalNotified == 0 {
			return "", fmt.Errorf("zero delta notifications delivered across all cells")
		}
		return out.String(), nil
	})
	run("repl", "read scaling: primary + N replication followers (extension)", func() (string, error) {
		var counts []int
		for _, s := range strings.Split(*replFols, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 0 {
				return "", fmt.Errorf("bad -repl-followers entry %q", s)
			}
			counts = append(counts, n)
		}
		out, rows, err := replExperiment(replConfig{
			docs: *docs, seed: *seed,
			duration: *loadDur,
			writers:  *writers, readersPerNode: *readers,
			expr:           *loadExpr,
			followerCounts: counts,
			writeInterval:  *replWrite,
		})
		if err != nil {
			return "", err
		}
		for _, r := range rows {
			record(benchResult{
				Name:       fmt.Sprintf("repl/followers=%d", r.Followers),
				QPS:        r.QueriesPerS,
				BatchesPS:  r.BatchesPerS,
				Followers:  r.Followers,
				LagP50Ms:   float64(r.LagP50.Microseconds()) / 1000,
				LagP99Ms:   float64(r.LagP99.Microseconds()) / 1000,
				LagSamples: r.LagSamples,
			})
		}
		return out, nil
	})

	if *jsonOut != "" && len(jsonResults) > 0 {
		if err := writeJSONResults(*jsonOut, jsonResults); err != nil {
			fmt.Fprintf(os.Stderr, "hopibench: write %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d results to %s\n", len(jsonResults), *jsonOut)
	}
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func loadJSON(name string, r loadgen.Result) benchResult {
	res := benchResult{
		Name:      name,
		QPS:       r.QueriesPerS,
		BatchesPS: r.BatchesPerS,
		CoverSize: r.CoverSize,
		WALBytes:  r.WALBytes,
		Durable:   r.Durable,
	}
	if r.QueriesPerS > 0 {
		res.NsPerOp = 1e9 / r.QueriesPerS // inverse aggregate query throughput
	}
	return res
}

func writeJSONResults(path string, results []benchResult) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
