// Command hopigen writes a synthetic collection to disk as real XML
// files, so the full pipeline can be exercised end to end:
//
//	hopigen -synthetic dblp -docs 100 -out ./corpus
//	hopibuild -in ./corpus -out corpus.hopi
//	hopiquery -index corpus.hopi -expr '//article//cite'
//
// Inter-document citation links are emitted as <link href="doc#anchor"/>
// elements, intra-document references as <link href="#anchor"/>.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"hopi/internal/gen"
	"hopi/internal/xmlmodel"
)

func main() {
	var (
		synth = flag.String("synthetic", "dblp", "dblp or inex")
		docs  = flag.Int("docs", 100, "document count")
		els   = flag.Int("els", 300, "mean elements per document (inex only)")
		seed  = flag.Int64("seed", 42, "generator seed")
		out   = flag.String("out", "./corpus", "output directory")
	)
	flag.Parse()

	var coll *xmlmodel.Collection
	switch *synth {
	case "dblp":
		coll = gen.DBLP(gen.DefaultDBLP(*docs, *seed))
	case "inex":
		coll = gen.INEX(gen.DefaultINEX(*docs, *els, *seed))
	default:
		fmt.Fprintf(os.Stderr, "hopigen: unknown collection kind %q\n", *synth)
		os.Exit(1)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail(err)
	}
	files := xmlmodel.WriteCollectionXML(coll)
	var bytes int64
	for name, data := range files {
		if err := os.WriteFile(filepath.Join(*out, name), data, 0o644); err != nil {
			fail(err)
		}
		bytes += int64(len(data))
	}
	fmt.Printf("wrote %d XML files (%d KB) to %s: %d elements, %d links\n",
		len(files), bytes/1024, *out, coll.NumElements(), coll.NumLinks())
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "hopigen:", err)
	os.Exit(1)
}
