package main

import (
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hopi"
)

// durableServer creates a durable primary index (which newServer
// automatically equips with a replication publisher at /repl/stream)
// over a tiny parsed collection and serves it.
func durableServer(t *testing.T, path string) (*httptest.Server, *hopi.Index) {
	t.Helper()
	files := map[string][]byte{
		"a.xml": []byte(`<bib><book><title>A</title><author/></book><cite href="b.xml"/></bib>`),
		"b.xml": []byte(`<bib><book><title>B</title><author/></book></bib>`),
	}
	coll, err := hopi.ParseCollection(files)
	if err != nil {
		t.Fatal(err)
	}
	opts := hopi.DefaultOptions()
	opts.WithDistance = true
	opts.Seed = 1
	ix, err := hopi.Create(path, coll, opts)
	if err != nil {
		t.Fatal(err)
	}
	h := newServer(ix, 0)
	srv := httptest.NewServer(h)
	t.Cleanup(func() {
		h.closeRepl()
		srv.Close()
		ix.Close()
	})
	return srv, ix
}

func postDoc(t *testing.T, base, name, body string, wantStatus int) {
	t.Helper()
	resp, err := http.Post(base+"/docs?name="+name, "application/xml", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: %s, want %d", name, resp.Status, wantStatus)
	}
}

func waitReplicaSeq(t *testing.T, base string, want uint64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		var st statsResponse
		getJSON(t, base+"/stats", http.StatusOK, &st)
		if st.AppliedSeq >= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("replica never reached seq %d", want)
}

// TestServerReplicaServesReadsRefusesWrites wires a replica hopiserve
// (in-process) to a durable primary hopiserve: reads replicate, writes
// are refused with 403, and /stats reports the topology on both sides.
func TestServerReplicaServesReadsRefusesWrites(t *testing.T) {
	dir := t.TempDir()
	primary, _ := durableServer(t, filepath.Join(dir, "p.hopi"))

	fol, err := hopi.Follow(primary.URL+"/repl/stream",
		hopi.FollowTimeout(15*time.Second),
		hopi.FollowReconnect(5*time.Millisecond, 100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fol.Close() })
	replica := httptest.NewServer(newServer(fol, 0))
	defer replica.Close()

	// a write through the primary becomes visible on the replica
	postDoc(t, primary.URL, "new.xml", `<bib><book><author/></book><cite href="a.xml"/></bib>`, http.StatusCreated)
	var pstats statsResponse
	getJSON(t, primary.URL+"/stats", http.StatusOK, &pstats)
	if pstats.Role != "primary" || pstats.AppliedSeq == 0 {
		t.Fatalf("primary stats: %+v", pstats)
	}
	waitReplicaSeq(t, replica.URL, pstats.AppliedSeq)

	var pq, rq queryResponse
	getJSON(t, primary.URL+"/query?expr=//book//author&limit=100", http.StatusOK, &pq)
	getJSON(t, replica.URL+"/query?expr=//book//author&limit=100", http.StatusOK, &rq)
	if pq.Count != rq.Count || rq.Count != 3 {
		t.Fatalf("primary %d matches, replica %d, want 3", pq.Count, rq.Count)
	}

	var rstats statsResponse
	getJSON(t, replica.URL+"/stats", http.StatusOK, &rstats)
	if rstats.Role != "replica" || rstats.ReplicaOf == "" || rstats.ReplicationLag != 0 || !rstats.Connected {
		t.Fatalf("replica stats: %+v", rstats)
	}
	if pstats.FollowerStreams == 0 {
		// re-read: the stream may have connected after the first probe
		getJSON(t, primary.URL+"/stats", http.StatusOK, &pstats)
		if pstats.FollowerStreams == 0 {
			t.Fatalf("primary reports no follower streams: %+v", pstats)
		}
	}

	// writes are refused with 403 and do not change the replica
	postDoc(t, replica.URL, "nope.xml", `<bib/>`, http.StatusForbidden)
	req, _ := http.NewRequest(http.MethodDelete, replica.URL+"/docs/a.xml", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("DELETE on replica: %s, want 403", resp.Status)
	}
}

// TestServerReplicaBehindTokenIs503 freezes a replica (its stream is
// stopped), advances the primary, and presents a primary-minted token
// to the frozen replica: same replication scope but a future sequence
// — the retryable case, answered 503 + Retry-After. A token from an
// older sequence stays a plain 400, and a token from an unrelated
// index (different scope) is a 400 bad token, never a 503 retry trap.
func TestServerReplicaBehindTokenIs503(t *testing.T) {
	dir := t.TempDir()
	primary, _ := durableServer(t, filepath.Join(dir, "p.hopi"))

	fol, err := hopi.Follow(primary.URL+"/repl/stream",
		hopi.FollowTimeout(15*time.Second),
		hopi.FollowReconnect(5*time.Millisecond, 100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	replica := httptest.NewServer(newServer(fol, 0))
	defer replica.Close()

	// one replicated write, then freeze the replica's stream
	postDoc(t, primary.URL, "one.xml", `<bib><book><author/></book></bib>`, http.StatusCreated)
	waitReplicaSeq(t, replica.URL, 1)
	if err := fol.Close(); err != nil {
		t.Fatal(err)
	}

	// the primary moves on; the frozen replica stays at seq 1
	postDoc(t, primary.URL, "two.xml", `<bib><book><author/></book></bib>`, http.StatusCreated)

	expr := url.QueryEscape("//book//author")
	var page queryResponse
	getJSON(t, primary.URL+"/query?expr="+expr+"&limit=1", http.StatusOK, &page)
	if page.NextPageToken == "" {
		t.Fatal("no nextPageToken on limited query")
	}
	resp, err := http.Get(replica.URL + "/query?expr=" + expr + "&limit=1&pageToken=" + url.QueryEscape(page.NextPageToken))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("future token on frozen replica: %s, want 503", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}

	// the reverse direction — the frozen replica's token on the
	// advanced primary — is the familiar non-retryable stale case
	var oldPage queryResponse
	getJSON(t, replica.URL+"/query?expr="+expr+"&limit=1", http.StatusOK, &oldPage)
	if oldPage.NextPageToken == "" {
		t.Fatal("no nextPageToken on replica")
	}
	resp, err = http.Get(primary.URL + "/query?expr=" + expr + "&limit=1&pageToken=" + url.QueryEscape(oldPage.NextPageToken))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("past token on primary: %s, want 400", resp.Status)
	}

	// a token minted by an unrelated durable index has a different
	// replication scope: bad token (400), not an eternal 503
	other, _ := durableServer(t, filepath.Join(dir, "other.hopi"))
	postDoc(t, other.URL, "extra.xml", `<bib><book><author/></book></bib>`, http.StatusCreated)
	postDoc(t, other.URL, "extra2.xml", `<bib><book><author/></book></bib>`, http.StatusCreated)
	var foreign queryResponse
	getJSON(t, other.URL+"/query?expr="+expr+"&limit=1", http.StatusOK, &foreign)
	resp, err = http.Get(replica.URL + "/query?expr=" + expr + "&limit=1&pageToken=" + url.QueryEscape(foreign.NextPageToken))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("foreign-scope token: %s, want 400", resp.Status)
	}
}

// TestServerReplicationStreamEndpoint sanity-checks the raw NDJSON
// endpoint: a bootstrap request opens with a heartbeat and a snapshot
// frame.
func TestServerReplicationStreamEndpoint(t *testing.T) {
	dir := t.TempDir()
	primary, _ := durableServer(t, filepath.Join(dir, "p.hopi"))
	resp, err := http.Get(primary.URL + "/repl/stream?from=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	buf := make([]byte, 1)
	line := ""
	for !strings.Contains(line, "\n") {
		if _, err := resp.Body.Read(buf); err != nil {
			t.Fatalf("reading first frame: %v (got %q)", err, line)
		}
		line += string(buf)
	}
	if !strings.Contains(line, `"type":"hb"`) {
		t.Fatalf("first frame %q, want a heartbeat", line)
	}

	// bad from parameter
	resp2, err := http.Get(primary.URL + "/repl/stream?from=potato")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad from: %s, want 400", resp2.Status)
	}
}
