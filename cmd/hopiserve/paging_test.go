package main

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"hopi"
	"hopi/internal/gen"
)

// newTestServer returns the handler plus the index behind it, serving
// a generated citation network big enough for real pages.
func newTestServer(t *testing.T, docs int) (http.Handler, *hopi.Index) {
	t.Helper()
	coll := hopi.WrapCollection(gen.DBLP(gen.DefaultDBLP(docs, 17)))
	opts := hopi.DefaultOptions()
	opts.WithDistance = true
	opts.Seed = 17
	ix, err := hopi.Build(coll, opts)
	if err != nil {
		t.Fatal(err)
	}
	return newServer(ix, 0), ix
}

// get performs a request against the handler and returns status + body.
func get(t *testing.T, h http.Handler, target string) (int, []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, target, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.Bytes()
}

func getInto(t *testing.T, h http.Handler, target string, wantStatus int, out any) []byte {
	t.Helper()
	code, body := get(t, h, target)
	if code != wantStatus {
		t.Fatalf("GET %s: status %d, want %d (body %s)", target, code, wantStatus, body)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("GET %s: decode: %v (body %s)", target, err, body)
		}
	}
	return body
}

// TestServerPagination drains /query page by page via nextPageToken
// and checks the concatenation equals the one-shot result, for both
// plain and ranked queries.
func TestServerPagination(t *testing.T) {
	h, _ := newTestServer(t, 40)
	for _, ranked := range []string{"", "&ranked=1"} {
		var full queryResponse
		getInto(t, h, "/query?expr=//article//author&limit=1000"+ranked, http.StatusOK, &full)
		if full.Count < 20 {
			t.Fatalf("full result too small: %d", full.Count)
		}
		if full.NextPageToken != "" {
			t.Fatalf("full result should have no nextPageToken")
		}

		var pages []queryResult
		token := ""
		for n := 0; ; n++ {
			u := "/query?expr=//article//author&limit=7" + ranked
			if token != "" {
				u += "&pageToken=" + url.QueryEscape(token)
			}
			var page queryResponse
			getInto(t, h, u, http.StatusOK, &page)
			if page.Count != len(page.Results) {
				t.Fatalf("count %d but %d results", page.Count, len(page.Results))
			}
			pages = append(pages, page.Results...)
			if page.NextPageToken == "" {
				break
			}
			token = page.NextPageToken
			if n > full.Count {
				t.Fatal("page walk did not terminate")
			}
		}
		if len(pages) != full.Count {
			t.Fatalf("ranked=%v: paged %d results, want %d", ranked != "", len(pages), full.Count)
		}
		for i := range pages {
			if pages[i] != full.Results[i] {
				t.Fatalf("ranked=%v: page result %d diverged: %+v vs %+v", ranked != "", i, pages[i], full.Results[i])
			}
		}
	}
}

// TestServerPageTokenErrors: malformed tokens and tokens from an older
// snapshot epoch are both 400, with distinct messages.
func TestServerPageTokenErrors(t *testing.T) {
	h, ix := newTestServer(t, 20)

	for _, bad := range []string{"garbage!", "QUJD", "a"} {
		code, body := get(t, h, "/query?expr=//article//author&pageToken="+url.QueryEscape(bad))
		if code != http.StatusBadRequest {
			t.Fatalf("token %q: status %d, want 400", bad, code)
		}
		if !strings.Contains(string(body), "invalid page token") {
			t.Fatalf("token %q: body %s, want an invalid-token message", bad, body)
		}
	}

	// a token for a different query is invalid, not stale
	var page queryResponse
	getInto(t, h, "/query?expr=//article//author&limit=3", http.StatusOK, &page)
	if page.NextPageToken == "" {
		t.Fatal("expected a nextPageToken at limit 3")
	}
	code, body := get(t, h, "/query?expr=//article//cite&pageToken="+url.QueryEscape(page.NextPageToken))
	if code != http.StatusBadRequest || !strings.Contains(string(body), "different query") {
		t.Fatalf("cross-query token: %d %s", code, body)
	}

	// maintenance retires the token with the distinct stale message
	if _, err := ix.Apply(t.Context(), insertBatch(t, "fresh.xml")); err != nil {
		t.Fatal(err)
	}
	code, body = get(t, h, "/query?expr=//article//author&limit=3&pageToken="+url.QueryEscape(page.NextPageToken))
	if code != http.StatusBadRequest {
		t.Fatalf("stale token: status %d, want 400 (body %s)", code, body)
	}
	if !strings.Contains(string(body), "stale page token") || !strings.Contains(string(body), "epoch") {
		t.Fatalf("stale token: body %s, want the distinct stale-epoch message", body)
	}
}

func insertBatch(t *testing.T, name string) *hopi.Batch {
	t.Helper()
	b := hopi.NewBatch()
	if err := b.InsertXML(name, []byte(`<article><author/></article>`)); err != nil {
		t.Fatal(err)
	}
	return b
}

// TestServerQueryStream: the NDJSON endpoint emits one result per
// line, ends with a nextPageToken line when truncated, and the lines
// match the paged JSON endpoint.
func TestServerQueryStream(t *testing.T) {
	h, _ := newTestServer(t, 20)
	var full queryResponse
	getInto(t, h, "/query?expr=//article//author&limit=1000", http.StatusOK, &full)

	code, body := get(t, h, "/query/stream?expr=//article//author")
	if code != http.StatusOK {
		t.Fatalf("stream: status %d (%s)", code, body)
	}
	var results []queryResult
	sc := bufio.NewScanner(strings.NewReader(string(body)))
	for sc.Scan() {
		var r queryResult
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("stream line %q: %v", sc.Text(), err)
		}
		results = append(results, r)
	}
	if len(results) != full.Count {
		t.Fatalf("stream: %d lines, want %d", len(results), full.Count)
	}
	for i := range results {
		if results[i] != full.Results[i] {
			t.Fatalf("stream line %d diverged", i)
		}
	}

	// truncated stream: last line is the nextPageToken
	code, body = get(t, h, "/query/stream?expr=//article//author&limit=5")
	if code != http.StatusOK {
		t.Fatalf("limited stream: status %d", code)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 6 {
		t.Fatalf("limited stream: %d lines, want 5 results + 1 token", len(lines))
	}
	var tok struct {
		NextPageToken string `json:"nextPageToken"`
	}
	if err := json.Unmarshal([]byte(lines[5]), &tok); err != nil || tok.NextPageToken == "" {
		t.Fatalf("limited stream tail %q: %v", lines[5], err)
	}
	// the token continues the sequence on /query
	var page queryResponse
	getInto(t, h, "/query?expr=//article//author&limit=5&pageToken="+url.QueryEscape(tok.NextPageToken), http.StatusOK, &page)
	if page.Count == 0 || page.Results[0] != full.Results[5] {
		t.Fatalf("stream token resume: %+v, want to continue at result 5", page)
	}

	// bad limits are rejected before any line is written
	code, _ = get(t, h, "/query/stream?expr=//article//author&limit=0")
	if code != http.StatusBadRequest {
		t.Fatalf("limit=0 stream: status %d, want 400", code)
	}
}

// TestServerExplain: the endpooint reports per-step modes, and the
// limited run shows the pushdown mode with fewer postings touched.
func TestServerExplain(t *testing.T) {
	h, _ := newTestServer(t, 40)
	var full hopi.Plan
	getInto(t, h, "/explain?expr=//article//author", http.StatusOK, &full)
	if len(full.Steps) != 2 || full.Steps[1].Mode != "semijoin" || full.Matches == 0 {
		t.Fatalf("full plan: %+v", full)
	}
	var lim hopi.Plan
	getInto(t, h, "/explain?expr=//article//author&limit=5", http.StatusOK, &lim)
	if lim.Steps[1].Mode != "stream-semijoin" || lim.Matches != 5 {
		t.Fatalf("limited plan: %+v", lim)
	}
	if lim.Steps[1].Postings >= full.Steps[1].Postings {
		t.Fatalf("limited explain touched %d postings, full %d", lim.Steps[1].Postings, full.Steps[1].Postings)
	}
	var ranked hopi.Plan
	getInto(t, h, "/explain?expr=//article//author&limit=5&ranked=1", http.StatusOK, &ranked)
	if m := ranked.Steps[1].Mode; m != "topk-bfs" && m != "topk-semijoin" {
		t.Fatalf("ranked plan: %+v", ranked)
	}
	code, _ := get(t, h, "/explain?expr=notaquery")
	if code != http.StatusBadRequest {
		t.Fatalf("bad expr explain: %d", code)
	}
	code, _ = get(t, h, "/explain")
	if code != http.StatusBadRequest {
		t.Fatalf("missing expr explain: %d", code)
	}
}

// TestServerStatsCounters: repeated queries hit the prepared cache and
// the counters in /stats reflect it.
func TestServerStatsCounters(t *testing.T) {
	h, ix := newTestServer(t, 20)
	for i := 0; i < 5; i++ {
		getInto(t, h, "/query?expr=//article//author&limit=3", http.StatusOK, nil)
	}
	var stats statsResponse
	getInto(t, h, "/stats", http.StatusOK, &stats)
	if stats.QueriesServed != 5 {
		t.Errorf("queriesServed = %d, want 5", stats.QueriesServed)
	}
	if stats.ResultsStreamed != 15 {
		t.Errorf("resultsStreamed = %d, want 15", stats.ResultsStreamed)
	}
	if stats.PreparedCached != 1 || stats.PreparedMisses != 1 || stats.PreparedHits != 4 {
		t.Errorf("prepared cache: size %d hits %d misses %d, want 1/4/1",
			stats.PreparedCached, stats.PreparedHits, stats.PreparedMisses)
	}
	before := stats.Epoch
	if _, err := ix.Apply(t.Context(), insertBatch(t, "e.xml")); err != nil {
		t.Fatal(err)
	}
	getInto(t, h, "/stats", http.StatusOK, &stats)
	if stats.Epoch == before {
		t.Errorf("epoch unchanged (%d) after a batch", stats.Epoch)
	}
}

// TestStmtCacheEviction: the LRU cap holds and parse failures are not
// cached.
func TestStmtCacheEviction(t *testing.T) {
	c := newStmtCache(2)
	if _, err := c.get("//a//b"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.get("//c//d"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.get("//a//b"); err != nil { // refresh a
		t.Fatal(err)
	}
	if _, err := c.get("//e//f"); err != nil { // evicts //c//d
		t.Fatal(err)
	}
	if c.len() != 2 {
		t.Fatalf("cache len %d, want 2", c.len())
	}
	if _, err := c.get("not a query"); err == nil {
		t.Fatal("parse failure cached as success")
	}
	if c.len() != 2 {
		t.Fatalf("cache len %d after parse failure, want 2", c.len())
	}
	if c.hits.Load() != 1 || c.misses.Load() != 3 {
		t.Fatalf("hits %d misses %d, want 1/3", c.hits.Load(), c.misses.Load())
	}
}
