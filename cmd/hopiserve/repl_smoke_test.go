package main

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestReplicationSmoke is the 3-process end-to-end: it builds the real
// hopiserve binary, starts a durable primary and two -replica-of
// followers as separate OS processes, writes through the primary,
// reads from the followers, kill -9s the primary, restarts it on the
// same port, and verifies the followers reconnect and converge on a
// post-restart write.
func TestReplicationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("3-process smoke test; skipped in -short")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "hopiserve")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	ports := freePorts(t, 3)
	primaryAddr := fmt.Sprintf("127.0.0.1:%d", ports[0])
	primaryURL := "http://" + primaryAddr
	store := filepath.Join(dir, "p.hopi")

	startPrimary := func() *exec.Cmd {
		cmd := exec.Command(bin,
			"-addr", primaryAddr,
			"-store", store,
			"-docs", "20", "-seed", "3",
			"-checkpoint", "1s")
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("start primary: %v", err)
		}
		return cmd
	}
	primary := startPrimary()
	defer func() { primary.Process.Kill(); primary.Wait() }()
	waitHealthy(t, primaryURL)

	// acknowledged writes at the primary
	for i := 0; i < 3; i++ {
		postDoc(t, primaryURL, fmt.Sprintf("smoke%02d.xml", i),
			`<bib><book><author/></book><cite href="pub00001.xml"/></bib>`, http.StatusCreated)
	}
	var pstats statsResponse
	getJSON(t, primaryURL+"/stats", http.StatusOK, &pstats)
	if pstats.Role != "primary" || pstats.AppliedSeq != 3 {
		t.Fatalf("primary stats after writes: %+v", pstats)
	}

	// two follower processes
	followers := make([]string, 2)
	for i := range followers {
		addr := fmt.Sprintf("127.0.0.1:%d", ports[i+1])
		cmd := exec.Command(bin, "-addr", addr, "-replica-of", primaryURL)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("start follower %d: %v", i, err)
		}
		defer func() { cmd.Process.Kill(); cmd.Wait() }()
		followers[i] = "http://" + addr
	}
	var pq queryResponse
	getJSON(t, primaryURL+"/query?expr="+qesc("//book//author")+"&limit=1000", http.StatusOK, &pq)
	for i, base := range followers {
		waitHealthy(t, base)
		waitReplicaSeq(t, base, pstats.AppliedSeq)
		var rq queryResponse
		getJSON(t, base+"/query?expr="+qesc("//book//author")+"&limit=1000", http.StatusOK, &rq)
		if rq.Count != pq.Count {
			t.Fatalf("follower %d: %d matches, primary has %d", i, rq.Count, pq.Count)
		}
		var rs statsResponse
		getJSON(t, base+"/stats", http.StatusOK, &rs)
		if rs.Role != "replica" {
			t.Fatalf("follower %d role %q", i, rs.Role)
		}
	}

	// kill -9 the primary, restart it on the same address
	if err := primary.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	primary.Wait()
	primary = startPrimary()
	defer func() { primary.Process.Kill(); primary.Wait() }()
	waitHealthy(t, primaryURL)
	getJSON(t, primaryURL+"/stats", http.StatusOK, &pstats)
	if pstats.AppliedSeq != 3 {
		t.Fatalf("primary lost committed writes across kill -9: %+v", pstats)
	}

	// a post-restart write reaches both followers through the resumed
	// streams
	postDoc(t, primaryURL, "after-crash.xml",
		`<bib><book><author/></book><cite href="smoke00.xml"/></bib>`, http.StatusCreated)
	getJSON(t, primaryURL+"/query?expr="+qesc("//book//author")+"&limit=1000", http.StatusOK, &pq)
	for i, base := range followers {
		waitReplicaSeq(t, base, 4)
		var rq queryResponse
		getJSON(t, base+"/query?expr="+qesc("//book//author")+"&limit=1000", http.StatusOK, &rq)
		if rq.Count != pq.Count {
			t.Fatalf("follower %d after restart: %d matches, primary has %d", i, rq.Count, pq.Count)
		}
	}
}

func qesc(expr string) string {
	return strings.ReplaceAll(strings.ReplaceAll(expr, "/", "%2F"), " ", "%20")
}

func freePorts(t *testing.T, n int) []int {
	t.Helper()
	ports := make([]int, n)
	listeners := make([]net.Listener, n)
	for i := range ports {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		ports[i] = ln.Addr().(*net.TCPAddr).Port
	}
	for _, ln := range listeners {
		ln.Close()
	}
	return ports
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("%s never became healthy", base)
}
