package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"hopi"
)

// defaultWatchHeartbeat is the idle interval after which a /watch
// stream emits a heartbeat frame so intermediaries don't drop the
// connection (flag-configurable via -watch-heartbeat).
const defaultWatchHeartbeat = 3 * time.Second

// watchFrame is one NDJSON line of the /watch stream.
//
//	{"type":"init","epoch":E,"add":[...]}            full result set
//	{"type":"resume","epoch":E}                      resume accepted, no init
//	{"type":"delta","epoch":E,"add":[...],"remove":[...],"coalesced":N}
//	{"type":"hb","epoch":E}                          idle heartbeat
//	{"type":"resync","epoch":E}                      terminal: fell behind, re-subscribe with resume=E
//	{"type":"bye"}                                   terminal: server closing the stream
type watchFrame struct {
	Type      string        `json:"type"`
	Epoch     uint64        `json:"epoch,omitempty"`
	Add       []queryResult `json:"add,omitempty"`
	Remove    []hopi.ElemID `json:"remove,omitempty"`
	Coalesced int           `json:"coalesced,omitempty"`
}

// handleWatch serves GET /watch?expr=...&ranked=1&resume=EPOCH as a
// long-lived NDJSON stream of live-query events. The resume epoch may
// also arrive as a Last-Event-Epoch header (the query parameter wins);
// when it matches the current snapshot the init frame is replaced by a
// resume frame and the client's retained result set stays valid.
func (s *server) handleWatch(w http.ResponseWriter, r *http.Request) {
	expr := r.URL.Query().Get("expr")
	if expr == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing expr parameter"))
		return
	}
	pq, err := s.cache.get(expr)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var opts []hopi.WatchOption
	if boolParam(r, "ranked") {
		opts = append(opts, hopi.WatchRanked())
	}
	resumeSpec := r.URL.Query().Get("resume")
	if resumeSpec == "" {
		resumeSpec = r.Header.Get("Last-Event-Epoch")
	}
	if resumeSpec != "" {
		epoch, err := strconv.ParseUint(resumeSpec, 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad resume epoch %q", resumeSpec))
			return
		}
		opts = append(opts, hopi.WatchResume(epoch))
	}
	select {
	case <-s.closing:
		writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("server shutting down"))
		return
	default:
	}

	// Cancel the subscription when the client disconnects or the
	// server begins shutting down, whichever comes first.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	go func() {
		select {
		case <-s.closing:
			cancel()
		case <-ctx.Done():
		}
	}()

	wt, err := s.ix.Watch(ctx, pq, opts...)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	defer wt.Close()

	s.streams.Add(1)
	defer s.streams.Done()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(fr watchFrame) {
		enc.Encode(fr)
		if flusher != nil {
			flusher.Flush()
		}
	}
	if wt.Resumed() {
		emit(watchFrame{Type: "resume", Epoch: s.ix.Epoch()})
	}
	for {
		hbCtx, hbCancel := context.WithTimeout(ctx, s.watchHB)
		ev, err := wt.Next(hbCtx)
		hbCancel()
		switch {
		case err == nil:
		case errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil:
			emit(watchFrame{Type: "hb", Epoch: s.ix.Epoch()})
			continue
		case errors.Is(err, hopi.ErrWatchClosed), ctx.Err() != nil:
			// index closed, server shutdown, or client gone: say
			// goodbye (a no-op on a dead connection) and end cleanly
			emit(watchFrame{Type: "bye"})
			return
		default:
			emit(watchFrame{Type: "bye"})
			return
		}
		fr := watchFrame{Epoch: ev.Epoch, Coalesced: ev.Coalesced}
		switch {
		case ev.Resync:
			fr.Type = "resync"
			emit(fr)
			return
		case ev.Init:
			fr.Type = "init"
		default:
			fr.Type = "delta"
		}
		fr.Add = make([]queryResult, len(ev.Add))
		for i, m := range ev.Add {
			fr.Add[i] = queryResult{Element: m.Element, Doc: m.Doc, Tag: m.Tag, Score: m.Score}
		}
		fr.Remove = ev.Remove
		emit(fr)
	}
}

// beginShutdown closes every active NDJSON stream (each writes its
// terminal frame and returns) and waits up to drain for them to
// finish, so the HTTP server's graceful Shutdown doesn't hang on
// long-lived connections.
func (s *server) beginShutdown(drain time.Duration) {
	s.closeOnce.Do(func() { close(s.closing) })
	done := make(chan struct{})
	go func() {
		s.streams.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(drain):
	}
}
