package main

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// watchStream opens GET /watch and returns a line scanner plus the
// response for cleanup.
func watchStream(t *testing.T, url string) (*bufio.Scanner, *http.Response) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("watch: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("watch: content type %q", ct)
	}
	t.Cleanup(func() { resp.Body.Close() })
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	return sc, resp
}

func nextFrame(t *testing.T, sc *bufio.Scanner) watchFrame {
	t.Helper()
	if !sc.Scan() {
		t.Fatalf("watch stream ended: %v", sc.Err())
	}
	var fr watchFrame
	if err := json.Unmarshal(sc.Bytes(), &fr); err != nil {
		t.Fatalf("bad frame %q: %v", sc.Text(), err)
	}
	return fr
}

// TestWatchEndpoint: init frame carries the full result set; a write
// produces a delta frame whose adds land in the new document; resuming
// with the delta's epoch skips the init frame.
func TestWatchEndpoint(t *testing.T) {
	srv, ix := testServer(t)
	defer ix.Close()

	sc, _ := watchStream(t, srv.URL+"/watch?expr=//article//author")
	init := nextFrame(t, sc)
	if init.Type != "init" || len(init.Add) != 0 {
		t.Fatalf("init frame: %+v", init)
	}

	resp, err := http.Post(srv.URL+"/docs?name=w.xml", "application/xml",
		strings.NewReader(`<article><title>T</title><author/><author/></article>`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("insert: status %d", resp.StatusCode)
	}

	var delta watchFrame
	for {
		delta = nextFrame(t, sc)
		if delta.Type != "hb" {
			break
		}
	}
	if delta.Type != "delta" || len(delta.Add) != 2 || len(delta.Remove) != 0 {
		t.Fatalf("delta frame: %+v", delta)
	}
	for _, r := range delta.Add {
		if r.Doc != "w.xml" || r.Tag != "author" {
			t.Fatalf("delta add: %+v", r)
		}
	}

	// resume from the delta's epoch: no init frame, a resume frame
	sc2, _ := watchStream(t, srv.URL+"/watch?expr=//article//author&resume="+strconv.FormatUint(delta.Epoch, 10))
	fr := nextFrame(t, sc2)
	if fr.Type != "resume" {
		t.Fatalf("resume frame: %+v", fr)
	}

	// stats expose the watch block
	var st statsResponse
	getJSON(t, srv.URL+"/stats", http.StatusOK, &st)
	if st.Watch.Sessions < 1 || st.Watch.Delivered == 0 {
		t.Fatalf("stats watch block: %+v", st.Watch)
	}
}

// TestWatchEndpointValidation: missing and malformed parameters fail
// fast with 400 instead of opening a stream.
func TestWatchEndpointValidation(t *testing.T) {
	srv, ix := testServer(t)
	defer ix.Close()
	for _, u := range []string{
		"/watch",
		"/watch?expr=%28%28",
		"/watch?expr=//author&resume=notanumber",
	} {
		resp, err := http.Get(srv.URL + u)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", u, resp.StatusCode)
		}
	}
}

// TestGracefulShutdownClosesStreams is the regression test for the
// shutdown path: with an idle /watch stream open, beginShutdown must
// deliver a terminal bye frame and return promptly instead of hanging
// on the long-lived connection.
func TestGracefulShutdownClosesStreams(t *testing.T) {
	_, ix := testServer(t)
	defer ix.Close()
	h := newServer(ix, 0)
	h.watchHB = 50 * time.Millisecond
	srv := httptest.NewServer(h)
	defer srv.Close()

	sc, _ := watchStream(t, srv.URL+"/watch?expr=//author")
	fr := nextFrame(t, sc)
	if fr.Type != "init" {
		t.Fatalf("init frame: %+v", fr)
	}

	done := make(chan struct{})
	go func() {
		h.beginShutdown(5 * time.Second)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("beginShutdown hung on an open watch stream")
	}

	// the stream must end with a terminal frame, not a cut connection
	for {
		fr = nextFrame(t, sc)
		if fr.Type == "hb" {
			continue
		}
		break
	}
	if fr.Type != "bye" {
		t.Fatalf("terminal frame: %+v", fr)
	}
	if sc.Scan() {
		t.Fatalf("frame after bye: %q", sc.Text())
	}

	// new watch requests are refused while shutting down
	resp, err := http.Get(srv.URL + "/watch?expr=//author")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("watch during shutdown: status %d, want 503", resp.StatusCode)
	}
}
