// Command hopiserve exposes a HOPI index as an HTTP JSON query
// service — the XML search-engine deployment the paper positions the
// index for (§1, §3.4). Queries are served from immutable snapshots
// and keep running while documents are inserted and deleted; writes
// are applied as serialized batches.
//
// Start against a saved index, or with a generated citation
// collection:
//
//	hopiserve -index dblp.hopi
//	hopiserve -docs 500 -distance
//
// API:
//
//	GET    /query?expr=//article//author&limit=10&ranked=1
//	GET    /reach?from=pub00005.xml&to=pub00002.xml&distance=1
//	GET    /stats
//	POST   /docs?name=new.xml            (body: the XML document)
//	DELETE /docs/{name}
//	POST   /links                        {"from":"a.xml:3","to":"b.xml"}
//	GET    /healthz
//
// Element addresses use the cmd-tool syntax: "doc.xml",
// "doc.xml:localIndex", or "doc.xml#anchor".
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hopi"
	"hopi/internal/gen"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		index    = flag.String("index", "", "saved index path (from hopibuild); empty generates a collection")
		docs     = flag.Int("docs", 500, "generated DBLP-like document count (when no -index)")
		seed     = flag.Int64("seed", 42, "generator seed")
		distance = flag.Bool("distance", true, "build a distance-aware index (enables ranked queries)")
	)
	flag.Parse()

	ix, err := loadIndex(*index, *docs, *seed, *distance)
	if err != nil {
		log.Fatalf("hopiserve: %v", err)
	}
	snap := ix.Snapshot()
	coll := snap.Collection()
	log.Printf("serving %d docs, %d elements, %d links, %d label entries on %s",
		coll.NumDocs(), coll.NumElements(), coll.NumLinks(), snap.Size(), *addr)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           newServer(ix),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	select {
	case err := <-errc:
		log.Fatalf("hopiserve: %v", err)
	case <-ctx.Done():
		log.Print("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Fatalf("hopiserve: shutdown: %v", err)
		}
	}
}

func loadIndex(path string, docs int, seed int64, distance bool) (*hopi.Index, error) {
	if path != "" {
		log.Printf("opening index %s", path)
		return hopi.Open(path)
	}
	log.Printf("generating DBLP-like collection (%d docs, seed %d)", docs, seed)
	coll := hopi.WrapCollection(gen.DBLP(gen.DefaultDBLP(docs, seed)))
	opts := hopi.DefaultOptions()
	opts.WithDistance = distance
	opts.Seed = seed
	ix, err := hopi.Build(coll, opts)
	if err != nil {
		return nil, fmt.Errorf("build: %w", err)
	}
	return ix, nil
}
