// Command hopiserve exposes a HOPI index as an HTTP JSON query
// service — the XML search-engine deployment the paper positions the
// index for (§1, §3.4). Queries are served from immutable snapshots
// and keep running while documents are inserted and deleted; writes
// are applied as serialized batches.
//
// Start against a saved index, with a generated citation collection,
// or — the durable deployment — attached to an on-disk store that is
// maintained in place and survives crashes:
//
//	hopiserve -index dblp.hopi
//	hopiserve -docs 500 -distance
//	hopiserve -store dblp.hopi              # create or reopen; WAL-backed writes
//	hopiserve -store dblp.hopi -checkpoint 10s
//	hopiserve -replica-of http://primary:8080 -addr :8081
//
// With -store, every maintenance batch is committed to the write-ahead
// log before the HTTP response is sent; kill the process at any point,
// restart it on the same path, and every acknowledged write is still
// there. The store is checkpointed periodically (-checkpoint) and on
// graceful shutdown. A -store server is also a replication primary: it
// streams its committed batches at GET /repl/stream, and any number of
// -replica-of servers bootstrap from its state image, replay the
// stream, and serve the read endpoints against their latest replayed
// snapshot (writes there fail 403 — send them to the primary). /stats
// reports each server's role, applied sequence, and replication lag.
//
// API:
//
//	GET    /query?expr=//article//author&limit=10&ranked=1
//	GET    /query?expr=...&pageToken=...  (continue a page sequence)
//	GET    /query/stream?expr=...         (NDJSON, one result per line)
//	GET    /watch?expr=...&resume=EPOCH   (NDJSON live query: init frame, then deltas)
//	GET    /explain?expr=...&limit=10     (per-step execution plan)
//	GET    /reach?from=pub00005.xml&to=pub00002.xml&distance=1
//	GET    /stats
//	GET    /repl/stream?from=N           (NDJSON log-shipping stream)
//	POST   /docs?name=new.xml            (body: the XML document)
//	DELETE /docs/{name}
//	POST   /links                        {"from":"a.xml:3","to":"b.xml"}
//	GET    /healthz
//
// Query responses carry count and, when the limit cut the result set
// short, nextPageToken. Expressions are compiled once into an LRU
// prepared-statement cache; limited queries stop evaluating once the
// page is full (limit pushdown). Page tokens are bound to the snapshot
// epoch: after any write they are rejected as stale (400) and the page
// sequence restarts. On durable primaries and replicas the epoch is
// the durable batch sequence, so a token issued by one replica resumes
// on any other; a replica that has not yet applied the token's batch
// answers 503 with Retry-After instead — retry the same token there.
//
// Element addresses use the cmd-tool syntax: "doc.xml",
// "doc.xml:localIndex", or "doc.xml#anchor".
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hopi"
	"hopi/internal/gen"
	"hopi/internal/obshttp"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		index      = flag.String("index", "", "saved index path (from hopibuild); empty generates a collection")
		store      = flag.String("store", "", "durable store path: reopen if present (replaying any WAL tail), else create; writes are WAL-committed before they are acknowledged")
		replicaOf  = flag.String("replica-of", "", "primary base URL (e.g. http://primary:8080): serve a read-only replica fed by its replication stream")
		checkpoint = flag.Duration("checkpoint", 30*time.Second, "with -store: interval between background checkpoints (0 disables)")
		docs       = flag.Int("docs", 500, "generated DBLP-like document count (when no -index)")
		seed       = flag.Int64("seed", 42, "generator seed")
		distance   = flag.Bool("distance", true, "build a distance-aware index (enables ranked queries)")
		maxLimit   = flag.Int("max-limit", defaultMaxLimit, "server-side ceiling for the query limit parameter (limit<=0 is rejected)")
		readyLag   = flag.Int("ready-max-lag", defaultReadyMaxLag, "replica lag ceiling (batches) for /readyz; beyond it the node reports unready")
		segments   = flag.Bool("segments", false, "with -store on first start: back the store with immutable compressed segments (LSM) instead of the page B-tree; reopens auto-detect the layout")
		segThresh  = flag.Int("segment-threshold", 0, "with -segments: in-memory delta entries that trigger a background seal (0 uses the built-in default, <0 disables auto-sealing)")
		segMax     = flag.Int("max-segments", 0, "with -segments: sealed stack size that triggers background compaction (0 uses the built-in default)")
		watchHB    = flag.Duration("watch-heartbeat", defaultWatchHeartbeat, "idle heartbeat interval on /watch streams")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address, on its own listener (\":6060\" binds loopback only); empty disables")
		accessLog  = flag.Bool("access-log", false, "log one structured line per HTTP request (method, path, status, duration, bytes, trace ID)")
	)
	flag.Parse()
	if *index != "" && *store != "" {
		log.Fatal("hopiserve: -index and -store are mutually exclusive (use -store to serve a saved index durably)")
	}
	if *replicaOf != "" && (*index != "" || *store != "") {
		log.Fatal("hopiserve: -replica-of is mutually exclusive with -index and -store (a replica holds no local state)")
	}

	var segOpts []hopi.OpenOption
	if *segments {
		segOpts = append(segOpts, hopi.Segments())
	}
	if *segThresh != 0 {
		segOpts = append(segOpts, hopi.SegmentThreshold(*segThresh))
	}
	if *segMax > 0 {
		segOpts = append(segOpts, hopi.SegmentMaxStack(*segMax))
	}

	ix, err := loadIndex(*index, *store, *replicaOf, *docs, *seed, *distance, segOpts)
	if err != nil {
		log.Fatalf("hopiserve: %v", err)
	}
	snap := ix.Snapshot()
	coll := snap.Collection()
	log.Printf("serving %d docs, %d elements, %d links, %d label entries on %s",
		coll.NumDocs(), coll.NumElements(), coll.NumLinks(), snap.Size(), *addr)

	h := newServer(ix, *maxLimit)
	h.readyMaxLag = *readyLag
	if *watchHB > 0 {
		h.watchHB = *watchHB
	}
	if h.pub != nil {
		log.Printf("replication: publishing committed batches at GET /repl/stream (last seq %d)", h.pub.LastSeq())
	}
	var handler http.Handler = h
	if *accessLog {
		handler = obshttp.AccessLog(log.Default(), handler)
	}
	if *pprofAddr != "" {
		bound, err := obshttp.ServePprof(*pprofAddr)
		if err != nil {
			log.Fatalf("hopiserve: %v", err)
		}
		log.Printf("pprof on http://%s/debug/pprof/", bound)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if ix.Durable() && *checkpoint > 0 {
		go checkpointLoop(ctx, ix, *checkpoint)
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	select {
	case err := <-errc:
		log.Fatalf("hopiserve: %v", err)
	case <-ctx.Done():
		log.Print("shutting down")
		// end the long-lived streams first — watch/NDJSON streams get a
		// terminal frame and a bounded drain, replication streams are
		// cut — or the graceful shutdown below would wait out its whole
		// timeout on them
		h.beginShutdown(5 * time.Second)
		h.closeRepl()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Fatalf("hopiserve: shutdown: %v", err)
		}
		// flush the store: checkpoint and detach so the next start
		// needs no WAL replay (on a replica this just stops the stream)
		if err := ix.Close(); err != nil {
			log.Fatalf("hopiserve: close store: %v", err)
		}
	}
}

// checkpointLoop folds the WAL into the store in the background so
// recovery stays short and the log stays small.
func checkpointLoop(ctx context.Context, ix *hopi.Index, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			walBytes, seq, _ := ix.WALSize()
			if err := ix.Checkpoint(); err != nil {
				log.Printf("checkpoint failed: %v", err)
				return
			}
			if walBytes > 0 {
				log.Printf("checkpoint: folded %d WAL bytes (through batch %d)", walBytes, seq)
			}
		}
	}
}

func loadIndex(path, store, replicaOf string, docs int, seed int64, distance bool, segOpts []hopi.OpenOption) (*hopi.Index, error) {
	if replicaOf != "" {
		url := strings.TrimSuffix(replicaOf, "/") + "/repl/stream"
		log.Printf("following primary at %s", url)
		ix, err := hopi.Follow(url)
		if err != nil {
			return nil, err
		}
		st := ix.ReplicaStatus()
		log.Printf("replica bootstrapped at seq %d (primary at %d)", st.AppliedSeq, st.PrimarySeq)
		return ix, nil
	}
	if path != "" {
		log.Printf("opening index %s", path)
		return hopi.Open(path)
	}
	if store != "" {
		// a B-tree store lives at the path itself; a segment store has
		// only sidecars (.coll/.wal/.segs), so probe the collection file
		// too before concluding the store is new
		_, err := os.Stat(store)
		if errors.Is(err, fs.ErrNotExist) {
			if _, cerr := os.Stat(store + ".coll"); cerr == nil {
				err = nil
			}
		}
		switch {
		case err == nil:
			log.Printf("reopening durable store %s", store)
			ix, err := hopi.Open(store, append([]hopi.OpenOption{hopi.Durable()}, segOpts...)...)
			if err != nil {
				return nil, err
			}
			_, seq, _ := ix.WALSize()
			log.Printf("recovered through batch %d", seq)
			return ix, nil
		case !errors.Is(err, fs.ErrNotExist):
			// anything but "not there" must not fall through to Create,
			// which would truncate an existing store
			return nil, fmt.Errorf("stat store %s: %w", store, err)
		}
	}
	log.Printf("generating DBLP-like collection (%d docs, seed %d)", docs, seed)
	coll := hopi.WrapCollection(gen.DBLP(gen.DefaultDBLP(docs, seed)))
	opts := hopi.DefaultOptions()
	opts.WithDistance = distance
	opts.Seed = seed
	if store != "" {
		log.Printf("creating durable store %s", store)
		ix, err := hopi.Create(store, coll, opts, segOpts...)
		if err != nil {
			return nil, fmt.Errorf("create store: %w", err)
		}
		return ix, nil
	}
	ix, err := hopi.Build(coll, opts)
	if err != nil {
		return nil, fmt.Errorf("build: %w", err)
	}
	return ix, nil
}
