package main

import (
	"container/list"
	"sync"
	"sync/atomic"

	"hopi"
)

// defaultCacheSize bounds the prepared-statement cache. Entries are
// tiny (a parsed expression), so the cap exists to bound adversarial
// churn, not memory in the expected case.
const defaultCacheSize = 256

// stmtCache is an LRU cache of prepared queries keyed by expression
// text: hot expressions parse once, not once per request. Prepared
// queries are snapshot-independent, so cached entries stay valid
// across maintenance batches.
type stmtCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits   atomic.Uint64
	misses atomic.Uint64
}

type stmtEntry struct {
	expr string
	pq   *hopi.PreparedQuery
}

func newStmtCache(capacity int) *stmtCache {
	if capacity <= 0 {
		capacity = defaultCacheSize
	}
	return &stmtCache{cap: capacity, ll: list.New(), items: map[string]*list.Element{}}
}

// get returns the prepared form of expr, parsing and caching it on
// first use. Parse errors are returned and not cached (a malformed
// expression should not be able to evict live entries).
func (c *stmtCache) get(expr string) (*hopi.PreparedQuery, error) {
	c.mu.Lock()
	if el, ok := c.items[expr]; ok {
		c.ll.MoveToFront(el)
		pq := el.Value.(*stmtEntry).pq
		c.mu.Unlock()
		c.hits.Add(1)
		return pq, nil
	}
	c.mu.Unlock()

	// Parse outside the lock; a concurrent miss on the same expression
	// just parses twice and the second insert wins harmlessly.
	pq, err := hopi.Prepare(expr)
	if err != nil {
		return nil, err
	}
	c.misses.Add(1)

	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[expr]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*stmtEntry).pq, nil
	}
	c.items[expr] = c.ll.PushFront(&stmtEntry{expr: expr, pq: pq})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*stmtEntry).expr)
	}
	return pq, nil
}

// len returns the number of cached statements.
func (c *stmtCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
