package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"hopi"
)

// maxDocBytes bounds the size of a posted XML document.
const maxDocBytes = 16 << 20

// defaultQueryLimit is the result cap applied when a query omits
// limit; defaultMaxLimit is the server-side ceiling a client-supplied
// limit is clamped to (flag-configurable via -max-limit). A client can
// never pull the unbounded result set: limit=0 or negative values are
// rejected with 400 instead of meaning "unlimited".
const (
	defaultQueryLimit = 100
	defaultMaxLimit   = 1000
)

// server wires a hopi.Index into the HTTP API. Reads are served from
// immutable snapshots, so queries keep running at full speed while
// maintenance batches apply; writes go through Index.Apply, which
// serializes them internally.
type server struct {
	ix       *hopi.Index
	maxLimit int
}

// newServer returns the HTTP handler for an index. maxLimit caps the
// per-query result count (0 picks the default).
func newServer(ix *hopi.Index, maxLimit int) http.Handler {
	if maxLimit <= 0 {
		maxLimit = defaultMaxLimit
	}
	s := &server{ix: ix, maxLimit: maxLimit}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /query", s.handleQuery)
	mux.HandleFunc("GET /reach", s.handleReach)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("POST /docs", s.handleInsertDoc)
	mux.HandleFunc("DELETE /docs/{name}", s.handleDeleteDoc)
	mux.HandleFunc("POST /links", s.handleInsertLink)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}

// statusFor maps resolution failures to 404, name collisions to 409,
// and everything else to 400, using the hopi sentinel errors (never
// error text, which embeds user-controlled names).
func statusFor(err error) int {
	switch {
	case errors.Is(err, hopi.ErrExists):
		return http.StatusConflict
	case errors.Is(err, hopi.ErrNotFound):
		return http.StatusNotFound
	}
	return http.StatusBadRequest
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

type queryResponse struct {
	Expr          string        `json:"expr"`
	Count         int           `json:"count"`
	ElapsedMicros int64         `json:"elapsedMicros"`
	Results       []queryResult `json:"results"`
}

type queryResult struct {
	Element hopi.ElemID `json:"element"`
	Doc     string      `json:"doc"`
	Tag     string      `json:"tag"`
	Score   float64     `json:"score,omitempty"`
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	expr := r.URL.Query().Get("expr")
	if expr == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing expr parameter"))
		return
	}
	limit := defaultQueryLimit
	if limit > s.maxLimit {
		limit = s.maxLimit
	}
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad limit %q: must be a positive integer", v))
			return
		}
		// clamp to the server-side ceiling instead of letting a client
		// pull the full result set
		if n > s.maxLimit {
			n = s.maxLimit
		}
		limit = n
	}
	opts := []hopi.QueryOption{hopi.QueryLimit(limit)}
	if boolParam(r, "ranked") {
		opts = append(opts, hopi.QueryRanked())
	}
	start := time.Now()
	res, err := s.ix.Snapshot().QueryCtx(r.Context(), expr, opts...)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	out := queryResponse{
		Expr:          expr,
		Count:         len(res),
		ElapsedMicros: time.Since(start).Microseconds(),
		Results:       make([]queryResult, 0, len(res)),
	}
	for _, m := range res {
		out.Results = append(out.Results, queryResult{
			Element: m.Element, Doc: m.Doc, Tag: m.Tag, Score: m.Score,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

type reachResponse struct {
	From      string  `json:"from"`
	To        string  `json:"to"`
	Reachable bool    `json:"reachable"`
	Distance  *uint32 `json:"distance,omitempty"`
}

func (s *server) handleReach(w http.ResponseWriter, r *http.Request) {
	fromSpec := r.URL.Query().Get("from")
	toSpec := r.URL.Query().Get("to")
	if fromSpec == "" || toSpec == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing from/to parameters"))
		return
	}
	snap := s.ix.Snapshot()
	coll := snap.Collection()
	u, err := coll.ResolveElement(fromSpec)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	v, err := coll.ResolveElement(toSpec)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	out := reachResponse{From: fromSpec, To: toSpec, Reachable: snap.Reaches(u, v)}
	if boolParam(r, "distance") {
		d, err := snap.Distance(u, v)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		// Unreachable pairs omit the field instead of exposing the
		// uint32 Infinite sentinel.
		if d != hopi.Infinite {
			out.Distance = &d
		}
	}
	writeJSON(w, http.StatusOK, out)
}

type statsResponse struct {
	Docs         int     `json:"docs"`
	Elements     int     `json:"elements"`
	Links        int     `json:"links"`
	LabelEntries int     `json:"labelEntries"`
	AvgPerNode   float64 `json:"avgLabelsPerNode"`
	StoredBytes  int64   `json:"storedBytes"`
	DistinctHubs int     `json:"distinctHubs"`
	// durable deployments (-store) report the write-ahead log state
	Durable   bool   `json:"durable,omitempty"`
	WALBytes  int64  `json:"walBytes,omitempty"`
	LastBatch uint64 `json:"lastBatch,omitempty"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	snap := s.ix.Snapshot()
	coll := snap.Collection()
	labels := snap.Labels()
	resp := statsResponse{
		Docs:         coll.NumDocs(),
		Elements:     coll.NumElements(),
		Links:        coll.NumLinks(),
		LabelEntries: labels.Entries,
		AvgPerNode:   labels.AvgPerNode,
		StoredBytes:  labels.StoredBytes,
		DistinctHubs: labels.DistinctHubs,
	}
	if walBytes, lastSeq, ok := s.ix.WALSize(); ok {
		resp.Durable = true
		resp.WALBytes = walBytes
		resp.LastBatch = lastSeq
	}
	writeJSON(w, http.StatusOK, resp)
}

type insertDocResponse struct {
	Doc        hopi.DocID `json:"doc"`
	Name       string     `json:"name"`
	Unresolved []string   `json:"unresolved,omitempty"`
}

func (s *server) handleInsertDoc(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing name parameter"))
		return
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, maxDocBytes+1))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if len(data) > maxDocBytes {
		writeErr(w, http.StatusRequestEntityTooLarge, fmt.Errorf("document exceeds %d bytes", maxDocBytes))
		return
	}
	b := hopi.NewBatch()
	if err := b.InsertXML(name, data); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.ix.Apply(r.Context(), b)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	op := res.Results[0]
	writeJSON(w, http.StatusCreated, insertDocResponse{Doc: op.Doc, Name: name, Unresolved: op.Unresolved})
}

type deleteDocResponse struct {
	Doc      hopi.DocID `json:"doc"`
	Name     string     `json:"name"`
	FastPath bool       `json:"fastPath"`
}

func (s *server) handleDeleteDoc(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	b := hopi.NewBatch()
	b.DeleteDocumentByName(name)
	res, err := s.ix.Apply(r.Context(), b)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	op := res.Results[0]
	writeJSON(w, http.StatusOK, deleteDocResponse{Doc: op.Doc, Name: name, FastPath: op.FastPath})
}

type insertLinkRequest struct {
	From string `json:"from"` // "doc.xml", "doc.xml:3"
	To   string `json:"to"`   // "doc.xml", "doc.xml:3", "doc.xml#anchor"
}

func (s *server) handleInsertLink(w http.ResponseWriter, r *http.Request) {
	var req insertLinkRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	fromDoc, fromLocal, fromAnchor, err := hopi.ParseElementSpec(req.From)
	if err == nil && fromAnchor != "" {
		err = fmt.Errorf("anchor addressing is only supported for link targets")
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	toDoc, toLocal, toAnchor, err := hopi.ParseElementSpec(req.To)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	b := hopi.NewBatch()
	if toAnchor != "" {
		b.InsertLinkByAnchor(fromDoc, fromLocal, toDoc, toAnchor)
	} else {
		b.InsertLink(fromDoc, fromLocal, toDoc, toLocal)
	}
	if _, err := s.ix.Apply(r.Context(), b); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"from": req.From, "to": req.To})
}

func boolParam(r *http.Request, name string) bool {
	switch r.URL.Query().Get(name) {
	case "1", "true", "yes":
		return true
	}
	return false
}
