package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hopi"
	"hopi/internal/obs"
	"hopi/internal/obshttp"
	"hopi/internal/shardrouter"
)

// maxDocBytes bounds the size of a posted XML document.
const maxDocBytes = 16 << 20

// defaultQueryLimit is the result cap applied when a query omits
// limit; defaultMaxLimit is the server-side ceiling a client-supplied
// limit is clamped to (flag-configurable via -max-limit). A client can
// never pull the unbounded result set: limit=0 or negative values are
// rejected with 400 instead of meaning "unlimited".
const (
	defaultQueryLimit = 100
	defaultMaxLimit   = 1000
)

// server wires a hopi.Index into the HTTP API. Reads are served from
// immutable snapshots, so queries keep running at full speed while
// maintenance batches apply; writes go through Index.Apply, which
// serializes them internally. Path expressions are compiled once into
// an LRU prepared-statement cache and executed as cursors, so limited
// and paginated queries stop evaluating once their page is full.
//
// A durable index (-store) additionally acts as a replication primary:
// its committed WAL batches stream to followers at GET /repl/stream. A
// follower index (-replica-of) serves the read endpoints against its
// latest replayed snapshot and refuses writes with 403.
type server struct {
	ix       *hopi.Index
	maxLimit int
	cache    *stmtCache
	mux      *http.ServeMux
	pub      *hopi.Publisher // log-shipping publisher, nil unless durable

	// shard is the in-process shard adapter behind the /shard/*
	// endpoints; readyMaxLag is the replica lag ceiling for /readyz.
	shard       shardrouter.Conn
	readyMaxLag int

	// Long-lived NDJSON streams (/watch, /query/stream) register in
	// streams; beginShutdown closes closing, which cancels their
	// contexts so each can write a terminal frame and exit before the
	// HTTP server's graceful drain starts.
	closing   chan struct{}
	closeOnce sync.Once
	streams   sync.WaitGroup
	watchHB   time.Duration // heartbeat interval on idle /watch streams

	queries  atomic.Uint64 // /query + /query/stream requests answered 200
	streamed atomic.Uint64 // results written across both query endpoints

	// reg is the process metric tree served on GET /metrics: the
	// index's registry plus the serving-layer families; shardRPCs
	// counts /shard/* requests by RPC kind (the shard-side mirror of
	// the router's hopi_router_shard_rpcs_total).
	reg       *obs.Registry
	shardRPCs *obs.CounterVec
}

// newServer returns the HTTP handler for an index. maxLimit caps the
// per-query result count (0 picks the default). A durable index gets a
// replication publisher mounted at GET /repl/stream.
func newServer(ix *hopi.Index, maxLimit int) *server {
	if maxLimit <= 0 {
		maxLimit = defaultMaxLimit
	}
	s := &server{
		ix: ix, maxLimit: maxLimit, cache: newStmtCache(defaultCacheSize),
		shard:       hopi.NewLocalShard("self", ix),
		readyMaxLag: defaultReadyMaxLag,
		closing:     make(chan struct{}),
		watchHB:     defaultWatchHeartbeat,
		reg:         obs.NewRegistry(),
	}
	// /metrics serves the whole tree: the index's families (query
	// latency by mode, WAL append/fsync, maintenance, replication,
	// segments, watch) plus the serving layer's own.
	s.reg.AddSub(ix.Metrics())
	s.reg.CounterFunc("hopi_serve_queries_total",
		"Query requests answered 200 across /query and /query/stream.",
		func() float64 { return float64(s.queries.Load()) })
	s.reg.CounterFunc("hopi_serve_results_streamed_total",
		"Result rows written across both query endpoints.",
		func() float64 { return float64(s.streamed.Load()) })
	s.reg.CounterFunc("hopi_serve_prepared_cache_hits_total",
		"Prepared-statement cache hits.",
		func() float64 { return float64(s.cache.hits.Load()) })
	s.reg.CounterFunc("hopi_serve_prepared_cache_misses_total",
		"Prepared-statement cache misses (each compiles the expression).",
		func() float64 { return float64(s.cache.misses.Load()) })
	s.reg.GaugeFunc("hopi_serve_prepared_cache_entries",
		"Prepared statements currently cached.",
		func() float64 { return float64(s.cache.len()) })
	s.shardRPCs = s.reg.CounterVec("hopi_shard_rpcs_total",
		"Shard RPCs served on /shard/*, by RPC kind.", "rpc")

	mux := http.NewServeMux()
	mux.Handle("GET /metrics", obshttp.MetricsHandler(s.reg))
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /query", s.handleQuery)
	mux.HandleFunc("GET /query/stream", s.handleQueryStream)
	mux.HandleFunc("GET /watch", s.handleWatch)
	mux.HandleFunc("GET /explain", s.handleExplain)
	mux.HandleFunc("GET /reach", s.handleReach)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("POST /docs", s.handleInsertDoc)
	mux.HandleFunc("DELETE /docs/{name}", s.handleDeleteDoc)
	mux.HandleFunc("POST /links", s.handleInsertLink)
	mux.HandleFunc("DELETE /links", s.handleDeleteLink)
	mux.HandleFunc("POST /shard/step", s.handleShardStep)
	mux.HandleFunc("POST /shard/deliver", s.handleShardDeliver)
	mux.HandleFunc("POST /shard/closure", s.handleShardClosure)
	mux.HandleFunc("POST /shard/resolve", s.handleShardResolve)
	if ix.Durable() {
		pub, err := ix.StartPublisher()
		if err != nil {
			// A durable server without its replication endpoint violates
			// the documented -store contract; say so instead of serving
			// mysterious 404s on /repl/stream.
			log.Printf("hopiserve: replication publisher unavailable: %v", err)
		} else {
			s.pub = pub
			mux.Handle("GET /repl/stream", pub)
		}
	}
	s.mux = mux
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// closeRepl terminates follower streams before the HTTP server's
// graceful shutdown, which would otherwise wait out its whole timeout
// on the long-lived stream requests.
func (s *server) closeRepl() {
	if s.pub != nil {
		s.pub.Close()
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}

// statusFor maps resolution failures to 404, name collisions to 409,
// writes against a read replica to 403, and everything else to 400,
// using the hopi sentinel errors (never error text, which embeds
// user-controlled names).
func statusFor(err error) int {
	switch {
	case errors.Is(err, hopi.ErrExists):
		return http.StatusConflict
	case errors.Is(err, hopi.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, hopi.ErrReadOnlyReplica):
		return http.StatusForbidden
	}
	return http.StatusBadRequest
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

type queryResponse struct {
	Expr          string        `json:"expr"`
	Count         int           `json:"count"`
	ElapsedMicros int64         `json:"elapsedMicros"`
	Results       []queryResult `json:"results"`
	// NextPageToken continues the result set where this page stopped:
	// pass it back as pageToken. Present only when results remain. The
	// token is bound to the query, the ranking mode, and the snapshot
	// epoch — after a maintenance batch it is rejected as stale.
	NextPageToken string `json:"nextPageToken,omitempty"`
	// Epoch is the snapshot epoch this page was served from (the epoch
	// a NextPageToken is pinned to).
	Epoch uint64 `json:"epoch"`
}

type queryResult struct {
	Element hopi.ElemID `json:"element"`
	Doc     string      `json:"doc"`
	Tag     string      `json:"tag"`
	Score   float64     `json:"score,omitempty"`
}

// parseLimit applies the server's limit policy: positive integers
// only, clamped to the -max-limit ceiling; omitted picks def.
func (s *server) parseLimit(r *http.Request, def int) (int, error) {
	limit := def
	if limit > s.maxLimit {
		limit = s.maxLimit
	}
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			return 0, fmt.Errorf("bad limit %q: must be a positive integer", v)
		}
		// clamp to the server-side ceiling instead of letting a client
		// pull the full result set
		if n > s.maxLimit {
			n = s.maxLimit
		}
		limit = n
	}
	return limit, nil
}

// queryCursor compiles the request's expression through the statement
// cache and opens a cursor for it. The returned status is the HTTP
// code to use when err != nil.
func (s *server) queryCursor(r *http.Request, limit int) (*hopi.Cursor, uint64, int, error) {
	expr := r.URL.Query().Get("expr")
	if expr == "" {
		return nil, 0, http.StatusBadRequest, fmt.Errorf("missing expr parameter")
	}
	pq, err := s.cache.get(expr)
	if err != nil {
		return nil, 0, http.StatusBadRequest, err
	}
	opts := []hopi.QueryOption{hopi.QueryLimit(limit)}
	if boolParam(r, "ranked") {
		opts = append(opts, hopi.QueryRanked())
	}
	if tok := r.URL.Query().Get("pageToken"); tok != "" {
		opts = append(opts, hopi.QueryResume(tok))
	}
	snap := s.ix.Snapshot()
	cur, err := snap.Run(r.Context(), pq, opts...)
	if err != nil {
		// Malformed and stale tokens are client errors (400); the error
		// text distinguishes them (ErrStaleToken names the epoch change
		// so clients know to restart the page sequence). The exception
		// is a retryable stale token — issued by a replica ahead of
		// this one: the page sequence still exists, this replica just
		// has not applied that batch yet, so the client should retry
		// the same token (503) rather than restart.
		var stale *hopi.StaleTokenError
		if errors.As(err, &stale) && stale.Retryable {
			return nil, 0, http.StatusServiceUnavailable, err
		}
		return nil, 0, http.StatusBadRequest, err
	}
	return cur, snap.Epoch(), 0, nil
}

// writeQueryErr writes a queryCursor failure, adding Retry-After for
// the retryable (replica-behind) 503 case.
func writeQueryErr(w http.ResponseWriter, code int, err error) {
	if code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeErr(w, code, err)
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	limit, err := s.parseLimit(r, defaultQueryLimit)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	start := time.Now()
	cur, epoch, code, err := s.queryCursor(r, limit)
	if err != nil {
		writeQueryErr(w, code, err)
		return
	}
	defer cur.Close()
	out := queryResponse{
		Expr:    r.URL.Query().Get("expr"),
		Results: make([]queryResult, 0, limit),
		Epoch:   epoch,
	}
	for cur.Next() {
		m := cur.Result()
		out.Results = append(out.Results, queryResult{
			Element: m.Element, Doc: m.Doc, Tag: m.Tag, Score: m.Score,
		})
	}
	if err := cur.Err(); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	out.Count = len(out.Results)
	out.ElapsedMicros = time.Since(start).Microseconds()
	if cur.HasMore() {
		out.NextPageToken = cur.Token()
	}
	s.queries.Add(1)
	s.streamed.Add(uint64(out.Count))
	writeJSON(w, http.StatusOK, out)
}

// handleQueryStream answers a query as NDJSON: one result object per
// line, written (and flushed) as the cursor produces them, followed by
// a trailing {"nextPageToken": ...} line when the limit cut the result
// set short. Errors after the first line surface as an {"error": ...}
// line.
func (s *server) handleQueryStream(w http.ResponseWriter, r *http.Request) {
	// Streaming is the drain-everything endpoint: default to the
	// server ceiling rather than the small page default.
	limit, err := s.parseLimit(r, s.maxLimit)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	cur, _, code, err := s.queryCursor(r, limit)
	if err != nil {
		writeQueryErr(w, code, err)
		return
	}
	defer cur.Close()
	s.streams.Add(1)
	defer s.streams.Done()
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	n := 0
	for cur.Next() {
		select {
		case <-s.closing:
			// terminal frame: the client restarts from its last token
			enc.Encode(errorBody{Error: "server shutting down"})
			return
		default:
		}
		m := cur.Result()
		enc.Encode(queryResult{Element: m.Element, Doc: m.Doc, Tag: m.Tag, Score: m.Score})
		n++
		if flusher != nil && n%64 == 0 {
			flusher.Flush()
		}
	}
	if err := cur.Err(); err != nil {
		enc.Encode(errorBody{Error: err.Error()})
		return
	}
	if cur.HasMore() {
		enc.Encode(map[string]string{"nextPageToken": cur.Token()})
	}
	s.queries.Add(1)
	s.streamed.Add(uint64(n))
}

// handleExplain runs the expression (under the optional limit and
// ranking) and reports the per-step execution plan: evaluator chosen,
// candidate-set and frontier sizes, posting entries touched.
func (s *server) handleExplain(w http.ResponseWriter, r *http.Request) {
	expr := r.URL.Query().Get("expr")
	if expr == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing expr parameter"))
		return
	}
	pq, err := s.cache.get(expr)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	// Default 0 = explain the unlimited run; an explicit limit gets the
	// same validation and -max-limit clamp as /query.
	limit, err := s.parseLimit(r, 0)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var opts []hopi.QueryOption
	if limit > 0 {
		opts = append(opts, hopi.QueryLimit(limit))
	}
	if boolParam(r, "ranked") {
		opts = append(opts, hopi.QueryRanked())
	}
	plan, err := s.ix.Snapshot().Explain(r.Context(), pq, opts...)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, plan)
}

type reachResponse struct {
	From      string  `json:"from"`
	To        string  `json:"to"`
	Reachable bool    `json:"reachable"`
	Distance  *uint32 `json:"distance,omitempty"`
}

func (s *server) handleReach(w http.ResponseWriter, r *http.Request) {
	fromSpec := r.URL.Query().Get("from")
	toSpec := r.URL.Query().Get("to")
	if fromSpec == "" || toSpec == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing from/to parameters"))
		return
	}
	snap := s.ix.Snapshot()
	coll := snap.Collection()
	u, err := coll.ResolveElement(fromSpec)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	v, err := coll.ResolveElement(toSpec)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	out := reachResponse{From: fromSpec, To: toSpec, Reachable: snap.Reaches(u, v)}
	if boolParam(r, "distance") {
		d, err := snap.Distance(u, v)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		// Unreachable pairs omit the field instead of exposing the
		// uint32 Infinite sentinel.
		if d != hopi.Infinite {
			out.Distance = &d
		}
	}
	writeJSON(w, http.StatusOK, out)
}

type statsResponse struct {
	Docs         int     `json:"docs"`
	Elements     int     `json:"elements"`
	Links        int     `json:"links"`
	LabelEntries int     `json:"labelEntries"`
	AvgPerNode   float64 `json:"avgLabelsPerNode"`
	StoredBytes  int64   `json:"storedBytes"`
	DistinctHubs int     `json:"distinctHubs"`
	// Epoch is the snapshot's maintenance-batch counter; resume tokens
	// are valid only while it is unchanged. Scope identifies the index
	// the epoch belongs to, and SeqEpoch marks epochs that are durable
	// WAL sequence numbers (portable across replicas).
	Epoch    uint64 `json:"epoch"`
	Scope    uint64 `json:"scope"`
	SeqEpoch bool   `json:"seqEpoch"`
	// Ready mirrors GET /readyz (a replica is unready while
	// disconnected or too far behind its primary).
	Ready bool `json:"ready"`
	// query-path counters: requests answered, results written, and the
	// prepared-statement cache's effectiveness
	QueriesServed   uint64 `json:"queriesServed"`
	ResultsStreamed uint64 `json:"resultsStreamed"`
	PreparedCached  int    `json:"preparedCached"`
	PreparedHits    uint64 `json:"preparedHits"`
	PreparedMisses  uint64 `json:"preparedMisses"`
	// durable deployments (-store) report the write-ahead log state
	Durable   bool   `json:"durable,omitempty"`
	WALBytes  int64  `json:"walBytes,omitempty"`
	LastBatch uint64 `json:"lastBatch,omitempty"`
	// replication topology: the index's role, the durable batch
	// sequence its served state reflects, and — on a replica — the
	// primary's position and the resulting lag in batches
	Role            string `json:"role"`
	AppliedSeq      uint64 `json:"appliedSeq"`
	PrimarySeq      uint64 `json:"primarySeq,omitempty"`
	ReplicationLag  uint64 `json:"replicationLag"`
	ReplicaOf       string `json:"replicaOf,omitempty"`
	Connected       bool   `json:"connected,omitempty"`
	FollowerStreams int64  `json:"followerStreams,omitempty"`
	BatchesShipped  uint64 `json:"batchesShipped,omitempty"`
	// segment-backed stores (-segments) report the LSM storage tier:
	// sealed stack shape, live-vs-delta split, compaction progress, and
	// whether reads go through mmap or the ReadAt fallback
	Segments *hopi.SegmentStats `json:"segments,omitempty"`
	// live-query activity: watch sessions, queued deltas, coalesced
	// batches, evictions, and which evaluation path served them
	Watch hopi.WatchStats `json:"watch"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	snap := s.ix.Snapshot()
	coll := snap.Collection()
	labels := snap.Labels()
	resp := statsResponse{
		Docs:            coll.NumDocs(),
		Elements:        coll.NumElements(),
		Links:           coll.NumLinks(),
		LabelEntries:    labels.Entries,
		AvgPerNode:      labels.AvgPerNode,
		StoredBytes:     labels.StoredBytes,
		DistinctHubs:    labels.DistinctHubs,
		Epoch:           snap.Epoch(),
		Scope:           snap.Scope(),
		SeqEpoch:        snap.HasSeqEpoch(),
		Ready:           s.readiness().Ready,
		QueriesServed:   s.queries.Load(),
		ResultsStreamed: s.streamed.Load(),
		PreparedCached:  s.cache.len(),
		PreparedHits:    s.cache.hits.Load(),
		PreparedMisses:  s.cache.misses.Load(),
	}
	if walBytes, lastSeq, ok := s.ix.WALSize(); ok {
		resp.Durable = true
		resp.WALBytes = walBytes
		resp.LastBatch = lastSeq
	}
	rs := s.ix.ReplicaStatus()
	resp.Role = rs.Role
	resp.AppliedSeq = rs.AppliedSeq
	resp.PrimarySeq = rs.PrimarySeq
	resp.ReplicationLag = rs.Lag
	resp.ReplicaOf = rs.PrimaryURL
	resp.Connected = rs.Connected
	resp.FollowerStreams = rs.FollowerStreams
	if s.pub != nil {
		resp.BatchesShipped = s.pub.Shipped()
	}
	if seg := s.ix.SegmentStats(); seg.Enabled {
		resp.Segments = &seg
	}
	resp.Watch = s.ix.WatchStats()
	writeJSON(w, http.StatusOK, resp)
}

type insertDocResponse struct {
	Doc        hopi.DocID `json:"doc"`
	Name       string     `json:"name"`
	Unresolved []string   `json:"unresolved,omitempty"`
	// Epoch is the snapshot epoch the write produced: clients routing
	// resume tokens across replicas use it to find a caught-up node.
	Epoch uint64 `json:"epoch"`
}

func (s *server) handleInsertDoc(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing name parameter"))
		return
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, maxDocBytes+1))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if len(data) > maxDocBytes {
		writeErr(w, http.StatusRequestEntityTooLarge, fmt.Errorf("document exceeds %d bytes", maxDocBytes))
		return
	}
	b := hopi.NewBatch()
	if err := b.InsertXML(name, data); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.ix.Apply(r.Context(), b)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	op := res.Results[0]
	writeJSON(w, http.StatusCreated, insertDocResponse{
		Doc: op.Doc, Name: name, Unresolved: op.Unresolved,
		Epoch: s.ix.Snapshot().Epoch(),
	})
}

type deleteDocResponse struct {
	Doc      hopi.DocID `json:"doc"`
	Name     string     `json:"name"`
	FastPath bool       `json:"fastPath"`
	Epoch    uint64     `json:"epoch"`
}

func (s *server) handleDeleteDoc(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	b := hopi.NewBatch()
	b.DeleteDocumentByName(name)
	res, err := s.ix.Apply(r.Context(), b)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	op := res.Results[0]
	writeJSON(w, http.StatusOK, deleteDocResponse{
		Doc: op.Doc, Name: name, FastPath: op.FastPath,
		Epoch: s.ix.Snapshot().Epoch(),
	})
}

type insertLinkRequest struct {
	From string `json:"from"` // "doc.xml", "doc.xml:3"
	To   string `json:"to"`   // "doc.xml", "doc.xml:3", "doc.xml#anchor"
}

func (s *server) handleInsertLink(w http.ResponseWriter, r *http.Request) {
	var req insertLinkRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	fromDoc, fromLocal, fromAnchor, err := hopi.ParseElementSpec(req.From)
	if err == nil && fromAnchor != "" {
		err = fmt.Errorf("anchor addressing is only supported for link targets")
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	toDoc, toLocal, toAnchor, err := hopi.ParseElementSpec(req.To)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	b := hopi.NewBatch()
	if toAnchor != "" {
		b.InsertLinkByAnchor(fromDoc, fromLocal, toDoc, toAnchor)
	} else {
		b.InsertLink(fromDoc, fromLocal, toDoc, toLocal)
	}
	if _, err := s.ix.Apply(r.Context(), b); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"from": req.From, "to": req.To, "epoch": s.ix.Snapshot().Epoch(),
	})
}

func boolParam(r *http.Request, name string) bool {
	switch r.URL.Query().Get(name) {
	case "1", "true", "yes":
		return true
	}
	return false
}
