package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"hopi"
)

// TestServerStoreSurvivesRestart drives writes through the HTTP API
// against a durable store, simulates a crash (no checkpoint, no
// graceful shutdown), restarts on the same path, and checks that every
// acknowledged write is visible — the hopiserve -store contract.
func TestServerStoreSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "serve.hopi")

	files := map[string][]byte{
		"a.xml": []byte(`<bib><book><title>A</title><author/></book><cite href="b.xml"/></bib>`),
		"b.xml": []byte(`<bib><book><title>B</title><author/></book></bib>`),
	}
	coll, err := hopi.ParseCollection(files)
	if err != nil {
		t.Fatal(err)
	}
	opts := hopi.DefaultOptions()
	opts.Seed = 1
	ix, err := hopi.Create(path, coll, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newServer(ix, 0))

	const inserts = 8
	for i := 0; i < inserts; i++ {
		name := fmt.Sprintf("crash%02d.xml", i)
		body := `<bib><book><author/></book><cite href="a.xml"/></bib>`
		resp, err := http.Post(srv.URL+"/docs?name="+name, "application/xml", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("POST %s: %s", name, resp.Status)
		}
	}
	var stats statsResponse
	getJSON(t, srv.URL+"/stats", http.StatusOK, &stats)
	if !stats.Durable || stats.LastBatch == 0 {
		t.Fatalf("stats does not report durability: %+v", stats)
	}

	// crash: stop serving without Close/checkpoint; the index object is
	// simply abandoned, like a killed process
	srv.Close()

	re, err := hopi.Open(path, hopi.Durable())
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer re.Close()
	srv2 := httptest.NewServer(newServer(re, 0))
	defer srv2.Close()

	getJSON(t, srv2.URL+"/stats", http.StatusOK, &stats)
	if want := 2 + inserts; stats.Docs != want {
		t.Fatalf("after restart: %d docs, want %d", stats.Docs, want)
	}
	var q queryResponse
	getJSON(t, srv2.URL+"/query?expr=//book//author&limit=1000", http.StatusOK, &q)
	if want := 2 + inserts; q.Count != want {
		t.Fatalf("after restart: %d //book//author matches, want %d", q.Count, want)
	}
	// the inserted docs' cites still resolve
	var reach reachResponse
	getJSON(t, srv2.URL+"/reach?from=crash00.xml&to=b.xml", http.StatusOK, &reach)
	if !reach.Reachable {
		t.Error("crash00.xml should reach b.xml via a.xml after restart")
	}
}
