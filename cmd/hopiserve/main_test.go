package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"hopi"
)

func testServer(t *testing.T) (*httptest.Server, *hopi.Index) {
	t.Helper()
	files := map[string][]byte{
		"a.xml": []byte(`<bib><book><title>A</title><author id="au"/></book><cite href="b.xml"/></bib>`),
		"b.xml": []byte(`<bib><book><title>B</title><author/></book><cite href="c.xml#sec"/></bib>`),
		"c.xml": []byte(`<paper><section id="sec"><author/></section></paper>`),
	}
	coll, err := hopi.ParseCollection(files)
	if err != nil {
		t.Fatal(err)
	}
	opts := hopi.DefaultOptions()
	opts.WithDistance = true
	opts.Seed = 1
	ix, err := hopi.Build(coll, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newServer(ix, 0))
	t.Cleanup(srv.Close)
	return srv, ix
}

// TestServerQueryLimitClamping: limit<=0 and garbage are rejected with
// 400 (no more "0 means unlimited" full-result pulls), oversized
// limits are clamped to the server ceiling, and valid limits truncate.
func TestServerQueryLimitClamping(t *testing.T) {
	srv, _ := testServer(t)

	for _, bad := range []string{"0", "-1", "-100", "abc", "1.5"} {
		getJSON(t, srv.URL+"/query?expr=//book//author&limit="+bad, http.StatusBadRequest, nil)
	}

	var q queryResponse
	getJSON(t, srv.URL+"/query?expr=//bib//*&limit=1", http.StatusOK, &q)
	if q.Count != 1 {
		t.Errorf("limit=1: got %d results", q.Count)
	}

	// a tiny server-side ceiling clamps a huge client limit
	clamped := httptest.NewServer(newServer(mustIndex(t), 2))
	defer clamped.Close()
	getJSON(t, clamped.URL+"/query?expr=//bib//*&limit=999999", http.StatusOK, &q)
	if q.Count != 2 {
		t.Errorf("clamped query: got %d results, want the ceiling of 2", q.Count)
	}
	// the default limit is also capped by the ceiling
	getJSON(t, clamped.URL+"/query?expr=//bib//*", http.StatusOK, &q)
	if q.Count != 2 {
		t.Errorf("default-limit query: got %d results, want 2", q.Count)
	}
}

func mustIndex(t *testing.T) *hopi.Index {
	t.Helper()
	files := map[string][]byte{
		"a.xml": []byte(`<bib><book><title>A</title><author/></book><book><author/></book></bib>`),
	}
	coll, err := hopi.ParseCollection(files)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := hopi.Build(coll, hopi.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func getJSON(t *testing.T, url string, wantStatus int, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: %s, want %d", url, resp.Status, wantStatus)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
}

func TestServerEndpoints(t *testing.T) {
	srv, _ := testServer(t)

	var q queryResponse
	getJSON(t, srv.URL+"/query?expr=//book//author", http.StatusOK, &q)
	if q.Count < 2 {
		t.Errorf("//book//author: %+v", q)
	}
	var ranked queryResponse
	getJSON(t, srv.URL+"/query?expr=//bib//author&ranked=1&limit=1", http.StatusOK, &ranked)
	if ranked.Count != 1 || ranked.Results[0].Score <= 0 {
		t.Errorf("ranked query: %+v", ranked)
	}
	getJSON(t, srv.URL+"/query", http.StatusBadRequest, nil)
	getJSON(t, srv.URL+"/query?expr=book", http.StatusBadRequest, nil)

	var reach reachResponse
	getJSON(t, srv.URL+"/reach?from=a.xml&to=c.xml%23sec&distance=1", http.StatusOK, &reach)
	if !reach.Reachable || reach.Distance == nil || *reach.Distance == 0 {
		t.Errorf("reach: %+v", reach)
	}
	getJSON(t, srv.URL+"/reach?from=nope.xml&to=a.xml", http.StatusNotFound, nil)

	var stats statsResponse
	getJSON(t, srv.URL+"/stats", http.StatusOK, &stats)
	if stats.Docs != 3 || stats.Elements == 0 {
		t.Errorf("stats: %+v", stats)
	}

	// Insert a document citing a.xml, then delete it again.
	body := `<bib><book><author/></book><cite href="a.xml"/></bib>`
	resp, err := http.Post(srv.URL+"/docs?name=d.xml", "application/xml", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var ins insertDocResponse
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /docs: %s", resp.Status)
	}
	json.NewDecoder(resp.Body).Decode(&ins)
	resp.Body.Close()
	if len(ins.Unresolved) != 0 {
		t.Errorf("insert: unresolved %v", ins.Unresolved)
	}
	getJSON(t, srv.URL+"/reach?from=d.xml&to=c.xml%23sec", http.StatusOK, &reach)
	if !reach.Reachable {
		t.Error("inserted doc should reach c.xml#sec through its cite")
	}

	// Re-inserting the same name must conflict, not shadow the original.
	resp, err = http.Post(srv.URL+"/docs?name=d.xml", "application/xml", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate POST /docs: %s, want 409", resp.Status)
	}

	// Out-of-range link endpoints must be rejected, not panic the op.
	resp, err = http.Post(srv.URL+"/links", "application/json",
		strings.NewReader(`{"from":"d.xml:99","to":"a.xml"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range POST /links: %s, want 400", resp.Status)
	}

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/docs/d.xml", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE /docs/d.xml: %s", resp.Status)
	}
	resp.Body.Close()
	req, _ = http.NewRequest(http.MethodDelete, srv.URL+"/docs/d.xml", nil)
	resp, _ = http.DefaultClient.Do(req)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("second DELETE /docs/d.xml: %s, want 404", resp.Status)
	}
	resp.Body.Close()
}

func TestServerLinkEndpoint(t *testing.T) {
	srv, _ := testServer(t)
	resp, err := http.Post(srv.URL+"/links", "application/json",
		strings.NewReader(`{"from":"c.xml:1","to":"a.xml"}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /links: %s", resp.Status)
	}
	resp.Body.Close()
	var reach reachResponse
	getJSON(t, srv.URL+"/reach?from=c.xml&to=a.xml", http.StatusOK, &reach)
	if !reach.Reachable {
		t.Error("c.xml should reach a.xml after the new link")
	}
}

// TestServerQueriesDuringInserts answers queries while document
// inserts are in flight — the mixed workload hopiserve exists for.
func TestServerQueriesDuringInserts(t *testing.T) {
	srv, ix := testServer(t)

	const writers, docsPerWriter = 2, 10
	var wg sync.WaitGroup
	errc := make(chan error, writers+4)
	done := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < docsPerWriter; i++ {
				name := fmt.Sprintf("w%d-%d.xml", w, i)
				body := `<bib><book><author/></book><cite href="a.xml"/></bib>`
				resp, err := http.Post(srv.URL+"/docs?name="+name, "application/xml", strings.NewReader(body))
				if err != nil {
					errc <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusCreated {
					errc <- fmt.Errorf("POST %s: %s", name, resp.Status)
					return
				}
			}
		}(w)
	}
	go func() { wg.Wait(); close(done) }()

	queries := 0
	for {
		select {
		case <-done:
			if queries == 0 {
				t.Fatal("no queries overlapped the inserts")
			}
			close(errc)
			for err := range errc {
				t.Fatal(err)
			}
			var q queryResponse
			getJSON(t, srv.URL+"/query?expr=//book//author&limit=1000", http.StatusOK, &q)
			want := 2 + writers*docsPerWriter // a.xml, b.xml + one author per inserted doc
			if q.Count != want {
				t.Errorf("after inserts: %d //book//author matches, want %d", q.Count, want)
			}
			if err := ix.Validate(); err != nil {
				t.Fatal(err)
			}
			return
		default:
			var q queryResponse
			getJSON(t, srv.URL+"/query?expr=//book//author&limit=1000", http.StatusOK, &q)
			if q.Count < 2 {
				t.Fatalf("mid-insert query lost baseline matches: %+v", q)
			}
			queries++
		}
	}
}
