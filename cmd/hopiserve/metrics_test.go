package main

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hopi"
	"hopi/internal/obs"
	"hopi/internal/obshttp"
	"hopi/internal/shardrouter"
)

// scrape fetches url/metrics and parses it with the strict exposition
// parser — malformed text (duplicate headers, out-of-order samples,
// non-monotone histogram buckets) fails the test here.
func scrape(t *testing.T, base string) map[string]*obs.ParsedFamily {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	fams, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("exposition did not parse: %v", err)
	}
	return fams
}

// counterTotal sums a family's samples, optionally filtered by one
// label value (empty value matches everything).
func counterTotal(fams map[string]*obs.ParsedFamily, name, label, value string) float64 {
	f := fams[name]
	if f == nil {
		return 0
	}
	var sum float64
	for _, s := range f.Samples {
		if value != "" && s.Labels[label] != value {
			continue
		}
		sum += s.Value
	}
	return sum
}

// TestMetricsExposition pins the hopiserve /metrics contract: the text
// parses strictly, the engine and serving families the dashboards key
// on are all present, and counters only ever move up across scrapes.
func TestMetricsExposition(t *testing.T) {
	coll, err := hopi.ParseCollection(map[string][]byte{
		"a.xml": []byte(`<article><title>t</title><author/></article>`),
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := hopi.DefaultOptions()
	opts.WithDistance = true
	ix, err := hopi.Build(coll, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newServer(ix, 0))
	defer srv.Close()

	before := scrape(t, srv.URL)
	for _, fam := range []string{
		// engine families (Index.Metrics, attached as a sub-registry)
		"hopi_query_seconds",
		"hopi_apply_seconds",
		"hopi_wal_fsync_seconds",
		"hopi_replication_lag_batches",
		"hopi_segment_stack_depth",
		"hopi_watch_sessions",
		// serving families registered by newServer
		"hopi_serve_queries_total",
		"hopi_serve_results_streamed_total",
		"hopi_serve_prepared_cache_hits_total",
		"hopi_serve_prepared_cache_misses_total",
		"hopi_serve_prepared_cache_entries",
		"hopi_shard_rpcs_total",
	} {
		if before[fam] == nil {
			t.Errorf("family %s missing from /metrics", fam)
		}
	}
	if ht := before["hopi_query_seconds"]; ht != nil && ht.Type != "histogram" {
		t.Errorf("hopi_query_seconds TYPE = %s, want histogram", ht.Type)
	}

	// Serve queries from concurrent workers while scraping in parallel
	// (this test runs under -race in CI), then re-scrape: every counter
	// family must be monotone, and the families the traffic touched
	// must have moved.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				resp, err := http.Get(srv.URL + "/query?expr=" + "//article//author")
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("query %d: %s", i, resp.Status)
					return
				}
				scrape(t, srv.URL)
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	after := scrape(t, srv.URL)
	for name, f := range before {
		if f.Type != "counter" {
			continue
		}
		for _, s := range f.Samples {
			var now float64
			for _, ns := range after[name].Samples {
				if fmt.Sprint(ns.Labels) == fmt.Sprint(s.Labels) {
					now = ns.Value
				}
			}
			if now < s.Value {
				t.Errorf("counter %s%v went backwards: %v -> %v", name, s.Labels, s.Value, now)
			}
		}
	}
	if got := counterTotal(after, "hopi_serve_queries_total", "", ""); got < 12 {
		t.Errorf("hopi_serve_queries_total = %v after 12 queries", got)
	}
	if counterTotal(after, "hopi_serve_prepared_cache_hits_total", "", "") < 2 {
		t.Errorf("repeated expr did not hit the prepared cache: %v",
			after["hopi_serve_prepared_cache_hits_total"].Samples)
	}
}

// TestRouterShardMetricsAgree cross-checks the two ends of the RPC
// accounting: after cross-shard queries over real HTTP, the router's
// own counters must equal the sum over shards of hopi_shard_rpcs_total
// read back from each shard's /metrics.
func TestRouterShardMetricsAgree(t *testing.T) {
	ctx := context.Background()
	conns := make([]hopi.ShardConn, 2)
	urls := make([]string, 2)
	for i := range conns {
		coll, err := hopi.ParseCollection(map[string][]byte{})
		if err != nil {
			t.Fatal(err)
		}
		opts := hopi.DefaultOptions()
		opts.WithDistance = true
		ix, err := hopi.Build(coll, opts)
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(newServer(ix, 0))
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
		conns[i] = shardrouter.NewHTTPShard(srv.URL, 5*time.Second)
	}
	router, err := hopi.NewRouter(conns, shardrouter.NewShardMap(2), "")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		xml := `<article><title>t</title><author/></article>`
		if i > 0 {
			xml = fmt.Sprintf(`<article><title>t</title><author/><cite href="pub%d.xml"/></article>`, i-1)
		}
		if _, err := router.InsertXML(ctx, fmt.Sprintf("pub%d.xml", i), []byte(xml)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := router.Query(ctx, "//article//author", hopi.RouterQueryOptions{}); err != nil {
			t.Fatal(err)
		}
	}

	var stepServed, deliverServed, closureServed float64
	for _, u := range urls {
		fams := scrape(t, u)
		stepServed += counterTotal(fams, "hopi_shard_rpcs_total", "rpc", "step")
		deliverServed += counterTotal(fams, "hopi_shard_rpcs_total", "rpc", "deliver")
		closureServed += counterTotal(fams, "hopi_shard_rpcs_total", "rpc", "closure")
	}
	c := router.Unwrap().Counters()
	if stepServed != float64(c.StepRPCs) {
		t.Errorf("step RPCs: shards served %v, router issued %d", stepServed, c.StepRPCs)
	}
	if deliverServed != float64(c.DeliverRPCs) {
		t.Errorf("deliver RPCs: shards served %v, router issued %d", deliverServed, c.DeliverRPCs)
	}
	// Cache misses bound the closure RPCs from above, not exactly: the
	// miss counter also covers deliver-table fills and piggybacked fills
	// that ride on step responses without a standalone Closure RPC.
	if closureServed > float64(c.ClosureCacheMisses) {
		t.Errorf("closure RPCs: shards served %v, router only missed %d", closureServed, c.ClosureCacheMisses)
	}

	// The router's own registry must agree with the same counters and
	// parse just as strictly when mounted (newRouterServer mounts it).
	rsrv := httptest.NewServer(newRouterServerForTest(router))
	defer rsrv.Close()
	rfams := scrape(t, rsrv.URL)
	if got := counterTotal(rfams, "hopi_router_shard_rpcs_total", "rpc", "step"); got != float64(c.StepRPCs) {
		t.Errorf("hopi_router_shard_rpcs_total{rpc=step} = %v, want %d", got, c.StepRPCs)
	}
	if got := counterTotal(rfams, "hopi_router_queries_total", "", ""); got != 3 {
		t.Errorf("hopi_router_queries_total = %v, want 3", got)
	}
}

// newRouterServerForTest mounts only the router's metrics registry —
// the piece of cmd/hopirouter's mux this package can exercise without
// importing package main of another command.
func newRouterServerForTest(r *hopi.Router) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", obshttp.MetricsHandler(r.Unwrap().Metrics()))
	return mux
}
