package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"hopi"
	"hopi/internal/shardrouter"
)

// This file is the shard side of the distributed query tier: a
// hopiserve primary exposes the router's Conn RPCs (step, deliver,
// closure, resolve) over HTTP, so a hopirouter can own it as one
// shard of a sharded deployment. The handlers delegate to the same
// in-process shard adapter the tests and hopibench use — the HTTP
// layer is only a codec. The hot RPCs speak both codecs: JSON (the
// debug format and cross-version bridge) and the binary frames of
// shardrouter's codec, chosen per request by Content-Type and Accept.
// Errors always travel as JSON, whatever codec the payloads used.

// defaultReadyMaxLag is how many batches a replica may trail its
// primary and still report ready (flag-configurable via -ready-max-lag).
const defaultReadyMaxLag = 64

// shardErr writes a shard-RPC failure. Epoch mismatches travel as 412
// Precondition Failed with the structured mismatch attached, so the
// router can classify (retry fresh queries, fail resumes as stale).
func shardErr(w http.ResponseWriter, err error) {
	var em *shardrouter.EpochMismatchError
	if errors.As(err, &em) {
		writeJSON(w, http.StatusPreconditionFailed, struct {
			Error    string                          `json:"error"`
			Mismatch *shardrouter.EpochMismatchError `json:"epochMismatch"`
		}{Error: err.Error(), Mismatch: em})
		return
	}
	writeErr(w, statusFor(err), err)
}

func decodeShardReq(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(io.LimitReader(r.Body, maxDocBytes)).Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad shard request: %w", err))
		return false
	}
	return true
}

// isBinaryReq reports whether the request's payload is a binary shard
// frame; wantBinaryResp whether the client can consume one in return.
func isBinaryReq(r *http.Request) bool {
	return strings.HasPrefix(r.Header.Get("Content-Type"), shardrouter.BinaryContentType)
}

func wantBinaryResp(r *http.Request) bool {
	return isBinaryReq(r) || strings.Contains(r.Header.Get("Accept"), shardrouter.BinaryContentType)
}

// readShardBody reads one shard-RPC payload (bounded like document
// ingest).
func readShardBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxDocBytes))
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad shard request: %w", err))
		return nil, false
	}
	return body, true
}

// spanFor builds the per-RPC span a traced shard request gets back:
// queue is the time spent reading and decoding the request body, eval
// the time inside the shard engine. The trace ID prefers the in-band
// request field and falls back to the X-Hopi-Trace header, so JSON
// clients that only set the header still get timed. Untraced requests
// get nil — the response stays byte-identical to the pre-tracing wire
// format.
func spanFor(r *http.Request, trace string, t0, t1, t2 time.Time) *shardrouter.Span {
	if trace == "" {
		trace = r.Header.Get(shardrouter.TraceHeader)
	}
	if trace == "" {
		return nil
	}
	return &shardrouter.Span{
		Trace:   trace,
		QueueUs: t1.Sub(t0).Microseconds(),
		EvalUs:  t2.Sub(t1).Microseconds(),
	}
}

// writeShardResp answers in the binary codec when the client asked for
// it, JSON otherwise. A traced binary response gets its encode time
// stamped into the span's trailing EncodeUs field after serialization —
// the span is the frame's final four bytes exactly so the measurement
// can include the encoding it describes. JSON spans report EncodeUs=0:
// there the span travels inside the body being encoded.
func writeShardResp(w http.ResponseWriter, r *http.Request, frame func() []byte, v any, sp *shardrouter.Span) {
	if wantBinaryResp(r) {
		w.Header().Set("Content-Type", shardrouter.BinaryContentType)
		t0 := time.Now()
		b := frame()
		if sp != nil {
			shardrouter.StampEncodeUs(b, time.Since(t0))
		}
		w.WriteHeader(http.StatusOK)
		w.Write(b)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *server) handleShardStep(w http.ResponseWriter, r *http.Request) {
	s.shardRPCs.With("step").Inc()
	t0 := time.Now()
	var req shardrouter.StepRequest
	if isBinaryReq(r) {
		body, ok := readShardBody(w, r)
		if !ok {
			return
		}
		p, err := shardrouter.DecodeStepRequest(body)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad shard request: %w", err))
			return
		}
		req = *p
	} else if !decodeShardReq(w, r, &req) {
		return
	}
	t1 := time.Now()
	resp, err := s.shard.Step(r.Context(), &req)
	if err != nil {
		shardErr(w, err)
		return
	}
	if sp := spanFor(r, req.Trace, t0, t1, time.Now()); sp != nil {
		resp.Span = sp
	}
	writeShardResp(w, r, func() []byte { return shardrouter.EncodeStepResponse(resp) }, resp, resp.Span)
}

func (s *server) handleShardDeliver(w http.ResponseWriter, r *http.Request) {
	s.shardRPCs.With("deliver").Inc()
	t0 := time.Now()
	var req shardrouter.DeliverRequest
	if isBinaryReq(r) {
		body, ok := readShardBody(w, r)
		if !ok {
			return
		}
		p, err := shardrouter.DecodeDeliverRequest(body)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad shard request: %w", err))
			return
		}
		req = *p
	} else if !decodeShardReq(w, r, &req) {
		return
	}
	t1 := time.Now()
	resp, err := s.shard.Deliver(r.Context(), &req)
	if err != nil {
		shardErr(w, err)
		return
	}
	if sp := spanFor(r, req.Trace, t0, t1, time.Now()); sp != nil {
		resp.Span = sp
	}
	writeShardResp(w, r, func() []byte { return shardrouter.EncodeDeliverResponse(resp) }, resp, resp.Span)
}

func (s *server) handleShardClosure(w http.ResponseWriter, r *http.Request) {
	s.shardRPCs.With("closure").Inc()
	t0 := time.Now()
	var req shardrouter.ClosureRequest
	if isBinaryReq(r) {
		body, ok := readShardBody(w, r)
		if !ok {
			return
		}
		p, err := shardrouter.DecodeClosureRequest(body)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad shard request: %w", err))
			return
		}
		req = *p
	} else if !decodeShardReq(w, r, &req) {
		return
	}
	t1 := time.Now()
	resp, err := s.shard.Closure(r.Context(), &req)
	if err != nil {
		shardErr(w, err)
		return
	}
	if sp := spanFor(r, req.Trace, t0, t1, time.Now()); sp != nil {
		resp.Span = sp
	}
	writeShardResp(w, r, func() []byte { return shardrouter.EncodeClosureResponse(resp) }, resp, resp.Span)
}

func (s *server) handleShardResolve(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Specs []string `json:"specs"`
	}
	if !decodeShardReq(w, r, &req) {
		return
	}
	res, err := s.shard.Resolve(r.Context(), req.Specs)
	if err != nil {
		shardErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Results []shardrouter.ResolveResult `json:"results"`
	}{Results: res})
}

// readyzResponse reports whether this node can serve complete, fresh
// answers: primaries and standalone indexes always can; a replica only
// once it is connected to its primary and within -ready-max-lag
// batches of it. The router excludes unready shards from fan-out.
type readyzResponse struct {
	Ready bool   `json:"ready"`
	Role  string `json:"role"`
	Lag   uint64 `json:"lag,omitempty"`
	Why   string `json:"why,omitempty"`
}

func (s *server) readiness() readyzResponse {
	rs := s.ix.ReplicaStatus()
	out := readyzResponse{Ready: true, Role: rs.Role, Lag: rs.Lag}
	if rs.Role == "replica" {
		switch {
		case !rs.Connected:
			out.Ready = false
			out.Why = "replication stream disconnected"
		case rs.Lag > uint64(s.readyMaxLag):
			out.Ready = false
			out.Why = fmt.Sprintf("replica %d batches behind primary (max %d)", rs.Lag, s.readyMaxLag)
		}
	}
	return out
}

func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	out := s.readiness()
	code := http.StatusOK
	if !out.Ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, out)
}

type deleteLinkRequest struct {
	From string `json:"from"` // "doc.xml", "doc.xml:3"
	To   string `json:"to"`   // "doc.xml", "doc.xml:3", "doc.xml#anchor"
}

func (s *server) handleDeleteLink(w http.ResponseWriter, r *http.Request) {
	var req deleteLinkRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	fromDoc, fromLocal, fromAnchor, err := hopi.ParseElementSpec(req.From)
	if err == nil && fromAnchor != "" {
		err = fmt.Errorf("anchor addressing is only supported for link targets")
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	toDoc, toLocal, toAnchor, err := hopi.ParseElementSpec(req.To)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if toAnchor != "" {
		// DeleteLink addresses targets by local index; resolve the
		// anchor against the current snapshot first.
		coll := s.ix.Snapshot().Collection()
		id, rerr := coll.ResolveElement(req.To)
		if rerr != nil {
			writeErr(w, statusFor(rerr), rerr)
			return
		}
		toLocal = localOf(coll, id)
	}
	b := hopi.NewBatch()
	b.DeleteLink(fromDoc, fromLocal, toDoc, toLocal)
	if _, err := s.ix.Apply(r.Context(), b); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"from": req.From, "to": req.To, "epoch": s.ix.Snapshot().Epoch(),
	})
}

func localOf(coll *hopi.Collection, id hopi.ElemID) int32 {
	doc := coll.DocOf(id)
	return int32(id) - int32(coll.ElemID(doc, 0))
}
