package main

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"hopi"
	"hopi/internal/shardrouter"
)

// TestCrossShardQueryTrace is the end-to-end for distributed tracing:
// a router with the slow-query log armed at threshold 0 queries two
// hopiserve shards over real HTTP (binary frames, spans stamped into
// the wire), and the captured span tree must carry the caller-chosen
// trace ID on every shard-reported span — proving the ID propagated
// router → HTTP → shard → HTTP → router unbroken.
func TestCrossShardQueryTrace(t *testing.T) {
	ctx := context.Background()
	conns := make([]hopi.ShardConn, 2)
	for i := range conns {
		coll, err := hopi.ParseCollection(map[string][]byte{})
		if err != nil {
			t.Fatal(err)
		}
		opts := hopi.DefaultOptions()
		opts.WithDistance = true
		ix, err := hopi.Build(coll, opts)
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(newServer(ix, 0))
		t.Cleanup(srv.Close)
		conns[i] = shardrouter.NewHTTPShard(srv.URL, 5*time.Second)
	}

	var mu sync.Mutex
	var traces []*hopi.RouterQueryTrace
	router, err := hopi.NewRouter(conns, shardrouter.NewShardMap(2), "",
		hopi.RouterSlowQueryLog(0, func(tr *hopi.RouterQueryTrace) {
			mu.Lock()
			traces = append(traces, tr)
			mu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}

	// A citation chain inserted through the router alternates across the
	// two shards (least-loaded placement), so every link crosses shards
	// and //article//author needs the cross-shard join.
	for i := 0; i < 4; i++ {
		xml := `<article><title>t</title><author/></article>`
		if i > 0 {
			xml = fmt.Sprintf(`<article><title>t</title><author/><cite href="pub%d.xml"/></article>`, i-1)
		}
		if _, err := router.InsertXML(ctx, fmt.Sprintf("pub%d.xml", i), []byte(xml)); err != nil {
			t.Fatal(err)
		}
	}

	const traceID = "0123456789abcdef"
	page, err := router.Query(ctx, "//article//author", hopi.RouterQueryOptions{Trace: traceID})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Results) != 4 {
		t.Fatalf("got %d results, want 4", len(page.Results))
	}

	mu.Lock()
	got := len(traces)
	var tr *hopi.RouterQueryTrace
	if got > 0 {
		tr = traces[0]
	}
	mu.Unlock()
	if got != 1 {
		t.Fatalf("slow-query log fired %d times, want 1", got)
	}
	if tr.TraceID != traceID {
		t.Fatalf("TraceID = %q, want the caller-chosen %q", tr.TraceID, traceID)
	}
	if tr.Results != 4 || tr.Attempts < 1 || tr.Expr != "//article//author" {
		t.Fatalf("trace header: %+v", tr)
	}

	// The seed round contacts both shards; the // step adds at least one
	// more RPC. Every successful span must carry the shard's own Span
	// echoing the trace ID — the HTTP handlers only attach one when the
	// binary frame's trailing trace survived the round trip.
	phases := map[string]bool{}
	if len(tr.Spans) < 3 {
		t.Fatalf("only %d spans: %s", len(tr.Spans), tr.Format())
	}
	for _, sp := range tr.Spans {
		phases[sp.Phase] = true
		if sp.Err != "" {
			t.Fatalf("span %s/%s failed: %s", sp.Phase, sp.Shard, sp.Err)
		}
		if sp.Remote == nil {
			t.Fatalf("span %s/%s has no shard-reported timing: %s", sp.Phase, sp.Shard, tr.Format())
		}
		if sp.Remote.Trace != traceID {
			t.Fatalf("span %s/%s echoed trace %q, want %q", sp.Phase, sp.Shard, sp.Remote.Trace, traceID)
		}
		if sp.Remote.QueueUs < 0 || sp.Remote.EvalUs < 0 || sp.Remote.EncodeUs < 0 {
			t.Fatalf("span %s/%s has negative timings: %+v", sp.Phase, sp.Shard, sp.Remote)
		}
	}
	if !phases["seed"] {
		t.Fatalf("no seed phase in %s", tr.Format())
	}

	// Untraced queries (threshold 0 still logs) mint their own ID.
	page2, err := router.Query(ctx, "//article//author", hopi.RouterQueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(page2.Results) != 4 {
		t.Fatalf("second query: %d results, want 4", len(page2.Results))
	}
	mu.Lock()
	defer mu.Unlock()
	if len(traces) != 2 {
		t.Fatalf("slow-query log fired %d times, want 2", len(traces))
	}
	if minted := traces[1].TraceID; len(minted) != 16 || minted == traceID {
		t.Fatalf("minted trace ID %q", minted)
	}
}
