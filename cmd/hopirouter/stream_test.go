package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"

	"hopi"
)

// streamLine is the union of the two /query/stream line shapes: result
// rows carry doc/tag, the terminal line carries nextPageToken or error.
type streamLine struct {
	Doc           string `json:"doc"`
	Tag           string `json:"tag"`
	NextPageToken string `json:"nextPageToken"`
	Error         string `json:"error"`
	Retryable     bool   `json:"retryable"`
}

// testRouterServer stands up an in-process 2-shard router over a
// citation chain (every link crosses shards under the alternating
// placement the partitioner picks for a chain) and serves it.
func testRouterServer(t *testing.T) *httptest.Server {
	t.Helper()
	files := map[string][]byte{}
	for i := 0; i < 10; i++ {
		xml := `<article><title>t</title><author/></article>`
		if i > 0 {
			xml = fmt.Sprintf(`<article><title>t</title><author/><cite href="pub%02d.xml"/></article>`, i-1)
		}
		files[fmt.Sprintf("pub%02d.xml", i)] = []byte(xml)
	}
	coll, err := hopi.ParseCollection(files)
	if err != nil {
		t.Fatal(err)
	}
	opts := hopi.DefaultOptions()
	opts.WithDistance = true
	opts.Seed = 3
	m, err := hopi.BuildShardMap(coll, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	parts := hopi.SplitCollection(coll, m)
	conns := make([]hopi.ShardConn, len(parts))
	for i, p := range parts {
		ix, err := hopi.Build(p, opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ix.Close() })
		conns[i] = hopi.NewLocalShard(fmt.Sprintf("s%d", i), ix)
	}
	router, err := hopi.NewRouter(conns, m, "")
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newRouterServer(router, 0))
	t.Cleanup(srv.Close)
	return srv
}

// readStream fetches a /query/stream URL and splits it into result
// lines plus the optional terminal line.
func readStream(t *testing.T, u string) ([]streamLine, *streamLine) {
	t.Helper()
	resp, err := http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", u, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("GET %s: content type %q", u, ct)
	}
	var results []streamLine
	var end *streamLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		var ln streamLine
		if err := json.Unmarshal(sc.Bytes(), &ln); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		if ln.NextPageToken != "" || ln.Error != "" {
			if end != nil {
				t.Fatalf("two terminal lines: %+v then %+v", *end, ln)
			}
			end = &ln
			continue
		}
		if end != nil {
			t.Fatalf("result line after terminal line: %+v", ln)
		}
		results = append(results, ln)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return results, end
}

// TestRouterQueryStream: the stream endpoint drains the same answer
// set /query pages through, a small pageSize forces multiple
// cross-shard rounds, and a limit yields a terminal resume-token line
// the next stream continues from without overlap.
func TestRouterQueryStream(t *testing.T) {
	srv := testRouterServer(t)
	expr := url.QueryEscape("//article//author")

	var full queryResponse
	getJSON(t, srv.URL+"/query?expr="+expr+"&limit=1000", http.StatusOK, &full)
	if full.Count != 10 {
		t.Fatalf("/query count = %d, want 10", full.Count)
	}

	// full drain through multiple 3-result pages
	rows, end := readStream(t, srv.URL+"/query/stream?expr="+expr+"&pageSize=3")
	if end != nil {
		t.Fatalf("exhausted stream ended with terminal line %+v", *end)
	}
	if len(rows) != full.Count {
		t.Fatalf("stream rows = %d, want %d", len(rows), full.Count)
	}
	seen := map[string]bool{}
	for _, r := range rows {
		if r.Tag != "author" {
			t.Fatalf("stream row: %+v", r)
		}
		seen[r.Doc] = true
	}

	// limited stream: 4 rows, then a resume token; the resumed stream
	// yields exactly the remaining rows
	head, end := readStream(t, srv.URL+"/query/stream?expr="+expr+"&pageSize=3&limit=4")
	if len(head) != 4 || end == nil || end.NextPageToken == "" || end.Error != "" {
		t.Fatalf("limited stream: %d rows, end %+v", len(head), end)
	}
	tail, end2 := readStream(t, srv.URL+"/query/stream?expr="+expr+"&pageSize=3&pageToken="+url.QueryEscape(end.NextPageToken))
	if end2 != nil {
		t.Fatalf("resumed stream ended with terminal line %+v", *end2)
	}
	if len(head)+len(tail) != full.Count {
		t.Fatalf("head %d + tail %d != %d", len(head), len(tail), full.Count)
	}
	got := map[string]bool{}
	for _, r := range append(head, tail...) {
		if got[r.Doc] {
			t.Fatalf("doc %s streamed twice across resume", r.Doc)
		}
		got[r.Doc] = true
	}
	for d := range seen {
		if !got[d] {
			t.Fatalf("doc %s missing after resume", d)
		}
	}
}

// TestRouterQueryStreamValidation: malformed parameters fail fast with
// 400 before any stream bytes.
func TestRouterQueryStreamValidation(t *testing.T) {
	srv := testRouterServer(t)
	for _, q := range []string{
		"",                         // missing expr
		"expr=//author&limit=0",    // non-positive limit
		"expr=//author&limit=x",    // garbage limit
		"expr=//author&pageSize=0", // non-positive pageSize
		fmt.Sprintf("expr=//author&pageSize=%d", defaultMaxLimit+1), // over the ceiling
		"expr=" + url.QueryEscape("(("),                             // parse error from the router
	} {
		resp, err := http.Get(srv.URL + "/query/stream?" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("?%s: status %d, want 400", q, resp.StatusCode)
		}
	}

	// a stale page token from another stream shape is terminal-400 too
	resp, err := http.Get(srv.URL + "/query/stream?expr=" + url.QueryEscape("//author") + "&pageToken=bogus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus token: status %d, want 400", resp.StatusCode)
	}
}
