// Command hopirouter is the distributed query tier over sharded
// hopiserve primaries: it owns the document→shard map, routes writes
// to the owning shard, fans descendant-axis queries out to every shard
// concurrently, and joins cross-shard paths at the serving tier with a
// semijoin over the shipped frontier centers — the serving-tier
// analogue of the paper's partition skeleton graph (§4). Answers are
// byte-identical to a single unsharded index over the union of the
// shards' documents, including ranked scores and cyclic self-matches.
//
//	hopirouter -shards http://shard0:8080,http://shard1:8080 -map shardmap.json
//
// The shard map is loaded from -map when the file exists; otherwise
// the router starts with an empty map for the given shard count and
// persists every mutation there atomically, so a restart resumes the
// same assignment. Shards are plain hopiserve primaries (typically
// -store durable ones); they need no router-specific configuration.
//
// API (mirrors hopiserve where the operations coincide):
//
//	GET    /query?expr=//article//author&limit=10&ranked=1
//	GET    /query?expr=...&pageToken=...  (vector resume token)
//	GET    /query/stream?expr=...&pageSize=256  (NDJSON, one result per line,
//	       shard cursor pages forwarded incrementally; resumes via pageToken)
//	GET    /stats                         (aggregated across shards)
//	GET    /healthz                       (process liveness)
//	GET    /readyz                        (every shard reachable + caught up)
//	POST   /docs?name=new.xml             (routed to the least-loaded shard)
//	DELETE /docs/{name}
//	POST   /links                         {"from":"a.xml:3","to":"b.xml"}
//	DELETE /links
//
// Page tokens are vectors — one {scope, epoch} per shard plus the map
// version. A write to any shard retires them: the router answers 400
// for a definitively stale token and 503 with Retry-After when a
// lagging shard will accept the token once caught up (same contract as
// hopiserve replicas). A shard that is down or restarting also answers
// 503 with Retry-After; clients retry against the router with capped
// backoff (internal/loadgen does this).
package main

import (
	"context"
	"errors"
	"flag"
	"io/fs"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hopi"
	"hopi/internal/obshttp"
	"hopi/internal/shardrouter"
)

func main() {
	var (
		addr          = flag.String("addr", ":8090", "listen address")
		shards        = flag.String("shards", "", "comma-separated shard base URLs (http://host:port), one hopiserve primary each")
		mapPath       = flag.String("map", "", "shard map path: load if present, else start empty; every mutation is persisted here")
		shardTimeout  = flag.Duration("shard-timeout", 30*time.Second, "per-shard RPC timeout")
		timeout       = flag.Duration("timeout", 0, "deprecated alias for -shard-timeout (overrides it when set)")
		breakerWindow = flag.Duration("breaker-window", 250*time.Millisecond, "how long a shard's circuit breaker stays open after a transport failure")
		maxLimit      = flag.Int("max-limit", defaultMaxLimit, "ceiling for the query limit parameter")
		slowQueryMs   = flag.Int("slow-query-ms", -1, "log a span tree for queries at least this slow (0 logs every query; negative disables)")
		pprofAddr     = flag.String("pprof", "", "serve net/http/pprof on this address, on its own listener (\":6060\" binds loopback only); empty disables")
		accessLog     = flag.Bool("access-log", false, "log one structured line per HTTP request (method, path, status, duration, bytes, trace ID)")
	)
	flag.Parse()
	if *shards == "" {
		log.Fatal("hopirouter: -shards is required")
	}
	rpcTimeout := *shardTimeout
	if *timeout > 0 {
		rpcTimeout = *timeout
	}
	urls := strings.Split(*shards, ",")
	conns := make([]hopi.ShardConn, 0, len(urls))
	for _, u := range urls {
		u = strings.TrimSpace(u)
		if u == "" {
			continue
		}
		conns = append(conns, shardrouter.NewHTTPShard(u, rpcTimeout))
	}
	if len(conns) == 0 {
		log.Fatal("hopirouter: -shards named no shard URLs")
	}

	m, err := loadOrInitMap(*mapPath, len(conns))
	if err != nil {
		log.Fatalf("hopirouter: %v", err)
	}
	if m.NumShards != len(conns) {
		log.Fatalf("hopirouter: map %s is for %d shards, -shards names %d", *mapPath, m.NumShards, len(conns))
	}
	opts := []hopi.RouterOption{hopi.RouterBreakerWindow(*breakerWindow)}
	if *slowQueryMs >= 0 {
		opts = append(opts, hopi.RouterSlowQueryLog(
			time.Duration(*slowQueryMs)*time.Millisecond,
			func(tr *hopi.RouterQueryTrace) { log.Print(tr.Format()) },
		))
	}
	router, err := hopi.NewRouter(conns, m, *mapPath, opts...)
	if err != nil {
		log.Fatalf("hopirouter: %v", err)
	}
	log.Printf("routing %d docs, %d cross links over %d shards on %s",
		len(m.Docs), len(m.CrossLinks), m.NumShards, *addr)

	var handler http.Handler = newRouterServer(router, *maxLimit)
	if *accessLog {
		handler = obshttp.AccessLog(log.Default(), handler)
	}
	if *pprofAddr != "" {
		bound, err := obshttp.ServePprof(*pprofAddr)
		if err != nil {
			log.Fatalf("hopirouter: %v", err)
		}
		log.Printf("pprof on http://%s/debug/pprof/", bound)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	select {
	case err := <-errc:
		log.Fatalf("hopirouter: %v", err)
	case <-ctx.Done():
		log.Print("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Fatalf("hopirouter: shutdown: %v", err)
		}
	}
}

func loadOrInitMap(path string, numShards int) (*hopi.ShardMap, error) {
	if path != "" {
		m, err := hopi.LoadShardMap(path)
		switch {
		case err == nil:
			log.Printf("loaded shard map %s (version %d)", path, m.Version)
			return m, nil
		case !errors.Is(err, fs.ErrNotExist):
			return nil, err
		}
		log.Printf("no shard map at %s; starting empty for %d shards", path, numShards)
	}
	return shardrouter.NewShardMap(numShards), nil
}
