package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hopi/internal/obs"
	"hopi/internal/shardrouter"
)

// TestObservabilitySmoke is the 3-process end-to-end for the
// observability layer: real hopiserve shards behind a real hopirouter,
// all three with the access log on and the router with the slow-query
// log armed at 0ms and a loopback pprof listener. It asserts that
// /metrics on every process serves strictly parseable Prometheus text
// with the expected families, that a client trace ID survives the
// router hop (echoed on the response while the same ID rides the
// binary shard frames), and that pprof answers on its own listener
// only — never through the serving port.
func TestObservabilitySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("3-process smoke test; skipped in -short")
	}
	dir := t.TempDir()
	serveBin := filepath.Join(dir, "hopiserve")
	routerBin := filepath.Join(dir, "hopirouter")
	for bin, pkg := range map[string]string{serveBin: "hopi/cmd/hopiserve", routerBin: "."} {
		build := exec.Command("go", "build", "-o", bin, pkg)
		build.Env = os.Environ()
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}

	ports := freePorts(t, 4)
	shardURLs := make([]string, 2)
	for i := 0; i < 2; i++ {
		addr := fmt.Sprintf("127.0.0.1:%d", ports[i])
		cmd := exec.Command(serveBin, "-addr", addr, "-docs", "0", "-access-log")
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("start shard %d: %v", i, err)
		}
		defer func() { cmd.Process.Kill(); cmd.Wait() }()
		shardURLs[i] = "http://" + addr
		waitStatus(t, shardURLs[i]+"/healthz", http.StatusOK)
	}

	routerURL := fmt.Sprintf("http://127.0.0.1:%d", ports[2])
	pprofAddr := fmt.Sprintf("127.0.0.1:%d", ports[3])
	router := exec.Command(routerBin,
		"-addr", fmt.Sprintf("127.0.0.1:%d", ports[2]),
		"-shards", strings.Join(shardURLs, ","),
		"-map", filepath.Join(dir, "shardmap.json"),
		"-slow-query-ms", "0",
		"-access-log",
		"-pprof", pprofAddr)
	router.Stdout = os.Stderr
	router.Stderr = os.Stderr
	if err := router.Start(); err != nil {
		t.Fatalf("start router: %v", err)
	}
	defer func() { router.Process.Kill(); router.Wait() }()
	waitStatus(t, routerURL+"/healthz", http.StatusOK)
	waitStatus(t, routerURL+"/readyz", http.StatusOK)

	// A citation chain through the router: alternating placement makes
	// every link cross-shard, so the traced query below exercises the
	// binary shard frames with the trailing trace section.
	for i := 0; i < 4; i++ {
		xml := `<article><title>t</title><author/></article>`
		if i > 0 {
			xml = fmt.Sprintf(`<article><title>t</title><author/><cite href="pub%d.xml"/></article>`, i-1)
		}
		postDoc(t, routerURL, fmt.Sprintf("pub%d.xml", i), xml, http.StatusCreated)
	}

	const traceID = "feedface00c0ffee"
	req, err := http.NewRequest("GET", routerURL+"/query?expr="+url.QueryEscape("//article//author")+"&limit=100", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(shardrouter.TraceHeader, traceID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced query: %s", resp.Status)
	}
	if got := resp.Header.Get(shardrouter.TraceHeader); got != traceID {
		t.Fatalf("response trace = %q, want the inbound %q", got, traceID)
	}
	var q queryResponse
	decodeInto(t, resp, &q)
	if q.Count != 4 {
		t.Fatalf("traced cross-shard query count = %d, want 4", q.Count)
	}

	// /metrics on every process: must parse strictly and carry the
	// families dashboards scrape.
	scrapeFams := func(base string, families ...string) map[string]*obs.ParsedFamily {
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s/metrics: %s", base, resp.Status)
		}
		fams, err := obs.ParseText(resp.Body)
		if err != nil {
			t.Fatalf("%s/metrics is not valid exposition text: %v", base, err)
		}
		for _, f := range families {
			if fams[f] == nil {
				t.Errorf("%s/metrics missing family %s", base, f)
			}
		}
		return fams
	}
	for _, u := range shardURLs {
		scrapeFams(u, "hopi_query_seconds", "hopi_wal_fsync_seconds",
			"hopi_serve_queries_total", "hopi_shard_rpcs_total", "hopi_watch_sessions")
	}
	rfams := scrapeFams(routerURL, "hopi_router_queries_total",
		"hopi_router_shard_rpcs_total", "hopi_router_shards", "hopi_router_wire_bytes_out_total")
	var served float64
	for _, s := range rfams["hopi_router_queries_total"].Samples {
		served += s.Value
	}
	if served < 1 {
		t.Errorf("hopi_router_queries_total = %v after a query", served)
	}

	// pprof answers on its dedicated loopback listener...
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get("http://" + pprofAddr + "/debug/pprof/")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("pprof never answered on %s: %v", pprofAddr, err)
		}
		time.Sleep(25 * time.Millisecond)
	}
	// ...and never through the public serving port.
	resp2, err := http.Get(routerURL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode == http.StatusOK {
		t.Fatal("profiling endpoints reachable through the public serving port")
	}
}

func decodeInto(t *testing.T, resp *http.Response, out any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}
