package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestRouterSmoke is the 3-process end-to-end for the distributed
// query tier: it builds the real hopiserve and hopirouter binaries,
// starts two empty durable shard primaries and a router over them,
// inserts documents with cross-shard citations through the router,
// queries through the router, kill -9s one shard (queries answer a
// fast 503 with Retry-After and the router reports unready), restarts
// the shard on its store, and verifies the tier recovers with the
// same answer set.
func TestRouterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("3-process smoke test; skipped in -short")
	}
	dir := t.TempDir()
	serveBin := filepath.Join(dir, "hopiserve")
	routerBin := filepath.Join(dir, "hopirouter")
	for bin, pkg := range map[string]string{serveBin: "hopi/cmd/hopiserve", routerBin: "."} {
		build := exec.Command("go", "build", "-o", bin, pkg)
		build.Env = os.Environ()
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}

	ports := freePorts(t, 3)
	shardURLs := make([]string, 2)
	shardCmds := make([]*exec.Cmd, 2)
	startShard := func(i int) *exec.Cmd {
		addr := fmt.Sprintf("127.0.0.1:%d", ports[i])
		cmd := exec.Command(serveBin,
			"-addr", addr,
			"-store", filepath.Join(dir, fmt.Sprintf("shard%d.hopi", i)),
			"-docs", "0",
			"-checkpoint", "1s")
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("start shard %d: %v", i, err)
		}
		return cmd
	}
	for i := range shardCmds {
		shardCmds[i] = startShard(i)
		shardURLs[i] = fmt.Sprintf("http://127.0.0.1:%d", ports[i])
		defer func(c *exec.Cmd) { c.Process.Kill(); c.Wait() }(shardCmds[i])
		waitStatus(t, shardURLs[i]+"/healthz", http.StatusOK)
	}

	routerURL := fmt.Sprintf("http://127.0.0.1:%d", ports[2])
	router := exec.Command(routerBin,
		"-addr", fmt.Sprintf("127.0.0.1:%d", ports[2]),
		"-shards", strings.Join(shardURLs, ","),
		"-map", filepath.Join(dir, "shardmap.json"))
	router.Stdout = os.Stderr
	router.Stderr = os.Stderr
	if err := router.Start(); err != nil {
		t.Fatalf("start router: %v", err)
	}
	defer func() { router.Process.Kill(); router.Wait() }()
	waitStatus(t, routerURL+"/healthz", http.StatusOK)
	waitStatus(t, routerURL+"/readyz", http.StatusOK)

	// Insert a citation chain through the router: each document cites
	// its predecessor, so with least-loaded placement alternating the
	// docs across two shards, every link crosses shards.
	for i := 0; i < 6; i++ {
		xml := `<article><title>t</title><author/></article>`
		if i > 0 {
			xml = fmt.Sprintf(`<article><title>t</title><author/><cite href="pub%02d.xml"/></article>`, i-1)
		}
		postDoc(t, routerURL, fmt.Sprintf("pub%02d.xml", i), xml, http.StatusCreated)
	}
	var st struct {
		Docs       int  `json:"docs"`
		CrossLinks int  `json:"crossLinks"`
		Ready      bool `json:"ready"`
	}
	getJSON(t, routerURL+"/stats", http.StatusOK, &st)
	if st.Docs != 6 || !st.Ready {
		t.Fatalf("router stats after inserts: %+v", st)
	}
	if st.CrossLinks == 0 {
		t.Fatal("alternating citation chain produced no cross-shard links")
	}

	// //article//author reaches every author from every citing article
	// through the link chain — answering it requires the cross-shard
	// join, not just per-shard fan-out.
	query := routerURL + "/query?expr=" + url.QueryEscape("//article//author") + "&limit=1000"
	var q1 queryResponse
	getJSON(t, query, http.StatusOK, &q1)
	// 6 articles each reach their own author plus every author down
	// their citation chain: 6+5+4+3+2+1 article→author pairs, but
	// results are distinct author elements reached from any article —
	// all 6 authors match.
	if q1.Count != 6 {
		t.Fatalf("//article//author count = %d, want 6", q1.Count)
	}
	var qr queryResponse
	getJSON(t, routerURL+"/query?expr="+url.QueryEscape("//article//title")+"&ranked=1&limit=3", http.StatusOK, &qr)
	if qr.Count != 3 || qr.NextPageToken == "" {
		t.Fatalf("ranked limited query: count=%d token=%q", qr.Count, qr.NextPageToken)
	}

	// kill -9 one shard: queries fail fast with 503 + Retry-After, the
	// router reports unready
	if err := shardCmds[1].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	shardCmds[1].Wait()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(query)
		if err != nil {
			t.Fatal(err)
		}
		retryAfter := resp.Header.Get("Retry-After")
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			if retryAfter == "" {
				t.Fatal("503 without Retry-After")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("query against dead shard answered %d, want 503", resp.StatusCode)
		}
		time.Sleep(25 * time.Millisecond)
	}
	waitStatus(t, routerURL+"/readyz", http.StatusServiceUnavailable)

	// restart the shard on its store: the tier recovers and the answer
	// set is unchanged
	shardCmds[1] = startShard(1)
	defer func() { shardCmds[1].Process.Kill(); shardCmds[1].Wait() }()
	waitStatus(t, shardURLs[1]+"/healthz", http.StatusOK)
	waitStatus(t, routerURL+"/readyz", http.StatusOK)
	deadline = time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(query)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			var q2 queryResponse
			if err := json.NewDecoder(resp.Body).Decode(&q2); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if q2.Count != q1.Count {
				t.Fatalf("post-restart count = %d, want %d", q2.Count, q1.Count)
			}
			break
		}
		resp.Body.Close()
		if time.Now().After(deadline) {
			t.Fatal("query never recovered after shard restart")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func freePorts(t *testing.T, n int) []int {
	t.Helper()
	ports := make([]int, n)
	listeners := make([]net.Listener, n)
	for i := range ports {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		ports[i] = ln.Addr().(*net.TCPAddr).Port
	}
	for _, ln := range listeners {
		ln.Close()
	}
	return ports
}

func waitStatus(t *testing.T, url string, want int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == want {
				return
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("%s never answered %d", url, want)
}

func postDoc(t *testing.T, base, name, xml string, want int) {
	t.Helper()
	resp, err := http.Post(base+"/docs?name="+url.QueryEscape(name), "application/xml", strings.NewReader(xml))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != want {
		var eb errResponse
		json.NewDecoder(resp.Body).Decode(&eb)
		t.Fatalf("POST %s: status %d (want %d): %s", name, resp.StatusCode, want, eb.Error)
	}
}

func getJSON(t *testing.T, url string, want int, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != want {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, want)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}
