package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"hopi"
	"hopi/internal/obshttp"
	"hopi/internal/shardrouter"
)

const (
	defaultMaxLimit = 1000
	maxDocBytes     = 16 << 20
)

type routerServer struct {
	r        *hopi.Router
	maxLimit int
	mux      *http.ServeMux
}

func newRouterServer(r *hopi.Router, maxLimit int) *routerServer {
	if maxLimit <= 0 {
		maxLimit = defaultMaxLimit
	}
	s := &routerServer{r: r, maxLimit: maxLimit}
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", obshttp.MetricsHandler(r.Unwrap().Metrics()))
	mux.HandleFunc("GET /query", s.handleQuery)
	mux.HandleFunc("GET /query/stream", s.handleQueryStream)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("POST /docs", s.handleInsertDoc)
	mux.HandleFunc("DELETE /docs/{name}", s.handleDeleteDoc)
	mux.HandleFunc("POST /links", s.handleLink(true))
	mux.HandleFunc("DELETE /links", s.handleLink(false))
	s.mux = mux
	return s
}

func (s *routerServer) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

type errResponse struct {
	Error     string `json:"error"`
	Retryable bool   `json:"retryable,omitempty"`
}

// writeRouterErr maps the router tier's error vocabulary onto HTTP.
// The load-bearing distinction is retryable-vs-terminal: a down shard
// or a token a lagging shard will accept once caught up answer 503
// with Retry-After (clients re-send the same request), while a
// definitively stale or malformed token answers 400 (clients restart
// the page sequence from scratch).
func writeRouterErr(w http.ResponseWriter, err error) {
	var (
		stale   *hopi.StaleTokenError
		unavail *shardrouter.ShardUnavailableError
	)
	switch {
	case errors.As(err, &unavail):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errResponse{Error: err.Error(), Retryable: true})
	case errors.As(err, &stale):
		if stale.Retryable {
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, errResponse{Error: err.Error(), Retryable: true})
			return
		}
		writeJSON(w, http.StatusBadRequest, errResponse{Error: err.Error()})
	case errors.Is(err, hopi.ErrExists):
		writeJSON(w, http.StatusConflict, errResponse{Error: err.Error()})
	case errors.Is(err, hopi.ErrNotFound):
		writeJSON(w, http.StatusNotFound, errResponse{Error: err.Error()})
	default:
		writeJSON(w, http.StatusBadRequest, errResponse{Error: err.Error()})
	}
}

type queryResponse struct {
	Expr          string              `json:"expr"`
	Count         int                 `json:"count"`
	Results       []hopi.RouterResult `json:"results"`
	NextPageToken string              `json:"nextPageToken,omitempty"`
}

func (s *routerServer) handleQuery(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	expr := q.Get("expr")
	if expr == "" {
		writeJSON(w, http.StatusBadRequest, errResponse{Error: "expr parameter required"})
		return
	}
	// An inbound X-Hopi-Trace flows into the distributed trace, so a
	// client-chosen ID correlates the access log, the slow-query span
	// tree, and every shard's own access log.
	opt := hopi.RouterQueryOptions{Resume: q.Get("pageToken"), Trace: r.Header.Get(shardrouter.TraceHeader)}
	switch q.Get("ranked") {
	case "1", "true", "yes":
		opt.Ranked = true
	}
	if ls := q.Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n <= 0 || n > s.maxLimit {
			writeJSON(w, http.StatusBadRequest, errResponse{
				Error: fmt.Sprintf("limit must be in 1..%d", s.maxLimit)})
			return
		}
		opt.Limit = n
	}
	page, err := s.r.Query(r.Context(), expr, opt)
	if err != nil {
		writeRouterErr(w, err)
		return
	}
	if page.Results == nil {
		page.Results = []hopi.RouterResult{}
	}
	writeJSON(w, http.StatusOK, queryResponse{
		Expr: expr, Count: len(page.Results),
		Results: page.Results, NextPageToken: page.NextToken,
	})
}

// streamEnd is the terminal line of a /query/stream response when the
// stream does not simply drain to exhaustion: a resume token when a
// limit cut it short, or an error (with the last good token, so the
// client continues instead of restarting the whole scan).
type streamEnd struct {
	NextPageToken string `json:"nextPageToken,omitempty"`
	Error         string `json:"error,omitempty"`
	Retryable     bool   `json:"retryable,omitempty"`
}

// retryableErr reports whether err is the 503-class vocabulary of
// writeRouterErr: a down shard, or a token a lagging shard will accept
// once caught up.
func retryableErr(err error) bool {
	var (
		stale   *hopi.StaleTokenError
		unavail *shardrouter.ShardUnavailableError
	)
	if errors.As(err, &unavail) {
		return true
	}
	return errors.As(err, &stale) && stale.Retryable
}

// handleQueryStream answers a distributed query as NDJSON: one result
// per line, each shard cursor page forwarded (and flushed) as soon as
// the cross-shard join produces it instead of buffering the full
// answer. Between pages the position lives in the same vector resume
// tokens /query hands out, so a stream that dies mid-way resumes with
// pageToken exactly like the paged endpoint — the terminal streamEnd
// line carries the token to continue from.
func (s *routerServer) handleQueryStream(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	expr := q.Get("expr")
	if expr == "" {
		writeJSON(w, http.StatusBadRequest, errResponse{Error: "expr parameter required"})
		return
	}
	opt := hopi.RouterQueryOptions{Resume: q.Get("pageToken"), Trace: r.Header.Get(shardrouter.TraceHeader)}
	switch q.Get("ranked") {
	case "1", "true", "yes":
		opt.Ranked = true
	}
	// limit caps the whole stream (0 = drain everything); pageSize is
	// the per-round shard page and therefore the flush granularity.
	limit := 0
	if ls := q.Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n <= 0 {
			writeJSON(w, http.StatusBadRequest, errResponse{Error: "limit must be a positive integer"})
			return
		}
		limit = n
	}
	pageSize := 256
	if ps := q.Get("pageSize"); ps != "" {
		n, err := strconv.Atoi(ps)
		if err != nil || n <= 0 || n > s.maxLimit {
			writeJSON(w, http.StatusBadRequest, errResponse{
				Error: fmt.Sprintf("pageSize must be in 1..%d", s.maxLimit)})
			return
		}
		pageSize = n
	}
	if pageSize > s.maxLimit {
		pageSize = s.maxLimit
	}

	// Fetch the first page before committing to a 200 so parse errors
	// and unavailable shards still answer with a real HTTP status.
	opt.Limit = pageSize
	if limit > 0 && limit < pageSize {
		opt.Limit = limit
	}
	page, err := s.r.Query(r.Context(), expr, opt)
	if err != nil {
		writeRouterErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	total := 0
	for {
		for i := range page.Results {
			enc.Encode(&page.Results[i])
		}
		total += len(page.Results)
		if flusher != nil {
			flusher.Flush()
		}
		if page.NextToken == "" {
			return
		}
		if limit > 0 && total >= limit {
			enc.Encode(streamEnd{NextPageToken: page.NextToken})
			return
		}
		opt.Resume = page.NextToken
		opt.Limit = pageSize
		if limit > 0 && limit-total < pageSize {
			opt.Limit = limit - total
		}
		page, err = s.r.Query(r.Context(), expr, opt)
		if err != nil {
			// mid-stream failure: terminal line with the token the
			// client resumes from (the one that produced this error)
			enc.Encode(streamEnd{
				NextPageToken: opt.Resume,
				Error:         err.Error(),
				Retryable:     retryableErr(err),
			})
			return
		}
	}
}

func (s *routerServer) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.r.Status(r.Context()))
}

func (s *routerServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz answers 200 only when every shard is reachable and
// caught up — the aggregated view of the shards' own /readyz.
func (s *routerServer) handleReadyz(w http.ResponseWriter, r *http.Request) {
	st := s.r.Status(r.Context())
	code := http.StatusOK
	if !st.Ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, st)
}

func (s *routerServer) handleInsertDoc(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		writeJSON(w, http.StatusBadRequest, errResponse{Error: "name parameter required"})
		return
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, maxDocBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errResponse{Error: err.Error()})
		return
	}
	res, err := s.r.InsertXML(r.Context(), name, data)
	if err != nil {
		writeRouterErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, res)
}

func (s *routerServer) handleDeleteDoc(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.r.DeleteDocument(r.Context(), name); err != nil {
		writeRouterErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"name": name})
}

type linkRequest struct {
	From string `json:"from"` // "doc.xml", "doc.xml:3"
	To   string `json:"to"`   // "doc.xml", "doc.xml:3", "doc.xml#anchor"
}

func (s *routerServer) handleLink(insert bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req linkRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, errResponse{Error: err.Error()})
			return
		}
		var err error
		code := http.StatusCreated
		if insert {
			err = s.r.InsertLink(r.Context(), req.From, req.To)
		} else {
			err = s.r.DeleteLink(r.Context(), req.From, req.To)
			code = http.StatusOK
		}
		if err != nil {
			writeRouterErr(w, err)
			return
		}
		writeJSON(w, code, map[string]string{"from": req.From, "to": req.To})
	}
}
