// Command hopibuild builds a HOPI index and persists it to a
// page-based cover store.
//
// Input is either a directory of XML files (id/xml:id anchors, idref
// and href links are recognized) or a synthetic collection:
//
//	hopibuild -in ./docs -out index.hopi
//	hopibuild -synthetic dblp -docs 620 -out dblp.hopi -distance
//	hopibuild -synthetic inex -docs 122 -out inex.hopi -partitioner single
//
// The index file is written to -out, the collection snapshot to
// -out.coll; query both with hopiquery.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"hopi"
	"hopi/internal/gen"
)

func main() {
	var (
		in        = flag.String("in", "", "directory of XML files to index")
		synth     = flag.String("synthetic", "", "generate a collection instead: dblp or inex")
		docs      = flag.Int("docs", 620, "synthetic document count")
		out       = flag.String("out", "index.hopi", "output index path")
		seed      = flag.Int64("seed", 42, "seed for generators and builds")
		distance  = flag.Bool("distance", false, "build a distance-aware index (§5)")
		preselect = flag.Bool("preselect", false, "preselect link targets as centers (§4.2)")
		partition = flag.String("partitioner", "budget", "whole | single | nodes | budget")
		nodeCap   = flag.Int("cap", 1000, "node cap for -partitioner nodes")
		budget    = flag.Int64("budget", 1_000_000, "closure budget for -partitioner budget")
		join      = flag.String("join", "new", "new | fullpsg | old")
	)
	flag.Parse()

	coll, err := loadCollection(*in, *synth, *docs, *seed)
	if err != nil {
		fail(err)
	}
	fmt.Printf("collection: %d docs, %d elements, %d links\n",
		coll.NumDocs(), coll.NumElements(), coll.NumLinks())

	opts := hopi.DefaultOptions()
	opts.Seed = *seed
	opts.WithDistance = *distance
	opts.PreselectCenters = *preselect
	opts.NodeCap = *nodeCap
	opts.ClosureBudget = *budget
	switch *partition {
	case "whole":
		opts.Partitioner = hopi.Whole
	case "single":
		opts.Partitioner = hopi.SingleDoc
	case "nodes":
		opts.Partitioner = hopi.NodeCapped
	case "budget":
		opts.Partitioner = hopi.ClosureBudget
	default:
		fail(fmt.Errorf("unknown partitioner %q", *partition))
	}
	switch *join {
	case "new":
		opts.Join = hopi.NewJoin
	case "fullpsg":
		opts.Join = hopi.NewJoinFullPSG
	case "old":
		opts.Join = hopi.OldJoin
	default:
		fail(fmt.Errorf("unknown join %q", *join))
	}

	t0 := time.Now()
	ix, err := hopi.Build(coll, opts)
	if err != nil {
		fail(err)
	}
	st := ix.Stats()
	fmt.Printf("built in %s: %d partitions, %d cross links, %d label entries\n",
		time.Since(t0).Round(time.Millisecond), st.Partitions, st.CrossLinks, ix.Size())
	fmt.Printf("phases: partition %s, covers %s, join %s\n",
		st.PartitionTime.Round(time.Millisecond),
		st.CoverTime.Round(time.Millisecond),
		st.JoinTime.Round(time.Millisecond))

	if err := ix.Save(*out); err != nil {
		fail(err)
	}
	fi, err := os.Stat(*out)
	if err != nil {
		fail(err)
	}
	fmt.Printf("saved %s (%d KB) and %s.coll\n", *out, fi.Size()/1024, *out)
}

func loadCollection(in, synth string, docs int, seed int64) (*hopi.Collection, error) {
	switch {
	case in != "":
		entries, err := os.ReadDir(in)
		if err != nil {
			return nil, err
		}
		files := map[string][]byte{}
		for _, e := range entries {
			if e.IsDir() || filepath.Ext(e.Name()) != ".xml" {
				continue
			}
			data, err := os.ReadFile(filepath.Join(in, e.Name()))
			if err != nil {
				return nil, err
			}
			files[e.Name()] = data
		}
		if len(files) == 0 {
			return nil, fmt.Errorf("no .xml files in %s", in)
		}
		return hopi.ParseCollection(files)
	case synth == "dblp":
		return hopi.WrapCollection(gen.DBLP(gen.DefaultDBLP(docs, seed))), nil
	case synth == "inex":
		return hopi.WrapCollection(gen.INEX(gen.DefaultINEX(docs, 950, seed))), nil
	default:
		return nil, fmt.Errorf("pass -in DIR or -synthetic dblp|inex")
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "hopibuild:", err)
	os.Exit(1)
}
