// Command hopistats prints Table 1-style statistics (documents,
// elements, links, approximate size) for a directory of XML files or a
// synthetic collection, plus the transitive-closure size that drives
// HOPI's memory budgeting.
//
//	hopistats -in ./docs
//	hopistats -synthetic dblp -docs 620
//	hopistats -synthetic inex -docs 122 -closure=false
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"hopi"
	"hopi/internal/gen"
	"hopi/internal/graph"
)

func main() {
	var (
		in      = flag.String("in", "", "directory of XML files")
		synth   = flag.String("synthetic", "", "dblp or inex")
		docs    = flag.Int("docs", 620, "synthetic document count")
		seed    = flag.Int64("seed", 42, "generator seed")
		closure = flag.Bool("closure", true, "also count transitive-closure connections (quadratic memory)")
	)
	flag.Parse()

	var coll *hopi.Collection
	switch {
	case *in != "":
		entries, err := os.ReadDir(*in)
		if err != nil {
			fail(err)
		}
		files := map[string][]byte{}
		for _, e := range entries {
			if e.IsDir() || filepath.Ext(e.Name()) != ".xml" {
				continue
			}
			data, err := os.ReadFile(filepath.Join(*in, e.Name()))
			if err != nil {
				fail(err)
			}
			files[e.Name()] = data
		}
		c, err := hopi.ParseCollection(files)
		if err != nil {
			fail(err)
		}
		coll = c
	case *synth == "dblp":
		coll = hopi.WrapCollection(gen.DBLP(gen.DefaultDBLP(*docs, *seed)))
	case *synth == "inex":
		coll = hopi.WrapCollection(gen.INEX(gen.DefaultINEX(*docs, 950, *seed)))
	default:
		fail(fmt.Errorf("pass -in DIR or -synthetic dblp|inex"))
	}

	fmt.Printf("# docs:     %d\n", coll.NumDocs())
	fmt.Printf("# elements: %d\n", coll.NumElements())
	fmt.Printf("# links:    %d\n", coll.NumLinks())
	fmt.Printf("size:       %.1f MB (approx.)\n", float64(coll.ApproxXMLBytes())/(1<<20))
	if *closure {
		conns := graph.CountConnections(coll.Unwrap().ElementGraph())
		fmt.Printf("closure:    %d connections (%d integers materialized)\n", conns, 4*conns)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "hopistats:", err)
	os.Exit(1)
}
