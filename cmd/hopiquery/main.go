// Command hopiquery runs reachability, distance, and path queries
// against an index built by hopibuild.
//
//	hopiquery -index dblp.hopi -from pub00001.xml -to pub00000.xml
//	hopiquery -index dblp.hopi -from 'pub00005.xml:3' -to pub00002.xml -distance
//	hopiquery -index dblp.hopi -expr '//article//cite' -limit 10
//	hopiquery -index dblp.hopi -expr '//article//author' -ranked
//	hopiquery -index dblp.hopi -descendants pub00000.xml
//
// Elements are addressed as "docname", "docname:localIndex" or
// "docname#anchor".
package main

import (
	"flag"
	"fmt"
	"hopi"
	"os"
)

func main() {
	var (
		index       = flag.String("index", "index.hopi", "index path (from hopibuild)")
		from        = flag.String("from", "", "source element (doc[:local|#anchor])")
		to          = flag.String("to", "", "target element")
		distance    = flag.Bool("distance", false, "report the shortest-path length instead of a boolean")
		expr        = flag.String("expr", "", "path expression, e.g. //book//author")
		ranked      = flag.Bool("ranked", false, "rank path-expression matches by connection length")
		descendants = flag.String("descendants", "", "list all elements reachable from this element")
		ancestors   = flag.String("ancestors", "", "list all elements reaching this element")
		limit       = flag.Int("limit", 20, "max results to print")
	)
	flag.Parse()

	ix, err := hopi.Open(*index)
	if err != nil {
		fail(err)
	}
	coll := ix.Collection()

	switch {
	case *from != "" && *to != "":
		u, err := resolve(coll, *from)
		if err != nil {
			fail(err)
		}
		v, err := resolve(coll, *to)
		if err != nil {
			fail(err)
		}
		if *distance {
			d, err := ix.Distance(u, v)
			if err != nil {
				fail(err)
			}
			if d == hopi.Infinite {
				fmt.Println("unreachable")
			} else {
				fmt.Printf("distance %d\n", d)
			}
			return
		}
		fmt.Println(ix.Reaches(u, v))
	case *expr != "":
		if *ranked {
			res, err := ix.QueryRanked(*expr)
			if err != nil {
				fail(err)
			}
			for i, r := range res {
				if i >= *limit {
					fmt.Printf("... %d more\n", len(res)-i)
					break
				}
				fmt.Printf("%6.4f  %s  <%s> (element %d)\n", r.Score, r.Doc, r.Tag, r.Element)
			}
			return
		}
		res, err := ix.Query(*expr)
		if err != nil {
			fail(err)
		}
		for i, r := range res {
			if i >= *limit {
				fmt.Printf("... %d more\n", len(res)-i)
				break
			}
			fmt.Printf("%s  <%s> (element %d)\n", r.Doc, r.Tag, r.Element)
		}
	case *descendants != "":
		u, err := resolve(coll, *descendants)
		if err != nil {
			fail(err)
		}
		printElems(coll, ix.Descendants(u), *limit)
	case *ancestors != "":
		u, err := resolve(coll, *ancestors)
		if err != nil {
			fail(err)
		}
		printElems(coll, ix.Ancestors(u), *limit)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func resolve(coll *hopi.Collection, spec string) (hopi.ElemID, error) {
	return coll.ResolveElement(spec)
}

func printElems(coll *hopi.Collection, ids []hopi.ElemID, limit int) {
	for i, id := range ids {
		if i >= limit {
			fmt.Printf("... %d more\n", len(ids)-i)
			return
		}
		fmt.Printf("%s  <%s> (element %d)\n", coll.DocName(coll.DocOf(id)), coll.Tag(id), id)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "hopiquery:", err)
	os.Exit(1)
}
