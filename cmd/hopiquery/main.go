// Command hopiquery runs reachability, distance, and path queries
// against an index built by hopibuild.
//
//	hopiquery -index dblp.hopi -from pub00001.xml -to pub00000.xml
//	hopiquery -index dblp.hopi -from 'pub00005.xml:3' -to pub00002.xml -distance
//	hopiquery -index dblp.hopi -expr '//article//cite' -limit 10
//	hopiquery -index dblp.hopi -expr '//article//author' -ranked
//	hopiquery -index dblp.hopi -expr '//abstract//para' -limit 10 -explain
//	hopiquery -index dblp.hopi -descendants pub00000.xml
//
// Path expressions run as cursors with limit pushdown: -limit stops
// the evaluation, not just the printing. -explain prints the per-step
// execution plan (evaluator chosen, frontier sizes, postings touched)
// instead of the results.
//
// Elements are addressed as "docname", "docname:localIndex" or
// "docname#anchor".
package main

import (
	"context"
	"flag"
	"fmt"
	"hopi"
	"os"
)

func main() {
	var (
		index       = flag.String("index", "index.hopi", "index path (from hopibuild)")
		from        = flag.String("from", "", "source element (doc[:local|#anchor])")
		to          = flag.String("to", "", "target element")
		distance    = flag.Bool("distance", false, "report the shortest-path length instead of a boolean")
		expr        = flag.String("expr", "", "path expression, e.g. //book//author")
		ranked      = flag.Bool("ranked", false, "rank path-expression matches by connection length")
		explain     = flag.Bool("explain", false, "print the execution plan of -expr instead of its results")
		descendants = flag.String("descendants", "", "list all elements reachable from this element")
		ancestors   = flag.String("ancestors", "", "list all elements reaching this element")
		limit       = flag.Int("limit", 20, "max results (pushed into the evaluation for -expr)")
	)
	flag.Parse()

	ix, err := hopi.Open(*index)
	if err != nil {
		fail(err)
	}
	coll := ix.Collection()

	switch {
	case *from != "" && *to != "":
		u, err := resolve(coll, *from)
		if err != nil {
			fail(err)
		}
		v, err := resolve(coll, *to)
		if err != nil {
			fail(err)
		}
		if *distance {
			d, err := ix.Distance(u, v)
			if err != nil {
				fail(err)
			}
			if d == hopi.Infinite {
				fmt.Println("unreachable")
			} else {
				fmt.Printf("distance %d\n", d)
			}
			return
		}
		fmt.Println(ix.Reaches(u, v))
	case *expr != "":
		pq, err := hopi.Prepare(*expr)
		if err != nil {
			fail(err)
		}
		var opts []hopi.QueryOption
		if *limit > 0 {
			opts = append(opts, hopi.QueryLimit(*limit))
		}
		if *ranked {
			opts = append(opts, hopi.QueryRanked())
		}
		if *explain {
			plan, err := ix.Explain(context.Background(), pq, opts...)
			if err != nil {
				fail(err)
			}
			printPlan(plan)
			return
		}
		cur, err := ix.Run(context.Background(), pq, opts...)
		if err != nil {
			fail(err)
		}
		defer cur.Close()
		for cur.Next() {
			r := cur.Result()
			if *ranked {
				fmt.Printf("%6.4f  %s  <%s> (element %d)\n", r.Score, r.Doc, r.Tag, r.Element)
			} else {
				fmt.Printf("%s  <%s> (element %d)\n", r.Doc, r.Tag, r.Element)
			}
		}
		if err := cur.Err(); err != nil {
			fail(err)
		}
		if cur.HasMore() {
			fmt.Println("... more results (raise -limit, or resume via the cursor API)")
		}
	case *descendants != "":
		u, err := resolve(coll, *descendants)
		if err != nil {
			fail(err)
		}
		printElems(coll, ix.Descendants(u), *limit)
	case *ancestors != "":
		u, err := resolve(coll, *ancestors)
		if err != nil {
			fail(err)
		}
		printElems(coll, ix.Ancestors(u), *limit)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func resolve(coll *hopi.Collection, spec string) (hopi.ElemID, error) {
	return coll.ResolveElement(spec)
}

func printElems(coll *hopi.Collection, ids []hopi.ElemID, limit int) {
	for i, id := range ids {
		if i >= limit {
			fmt.Printf("... %d more\n", len(ids)-i)
			return
		}
		fmt.Printf("%s  <%s> (element %d)\n", coll.DocName(coll.DocOf(id)), coll.Tag(id), id)
	}
}

// printPlan renders the per-step execution report as a fixed-width
// table.
func printPlan(p *hopi.Plan) {
	mode := "plain"
	if p.Ranked {
		mode = "ranked"
	}
	fmt.Printf("plan for %s (%s", p.Expr, mode)
	if p.Limit > 0 {
		fmt.Printf(", limit %d", p.Limit)
	}
	fmt.Printf("): %d results in %s\n", p.Matches, p.Elapsed)
	fmt.Printf("%-4s %-5s %-12s %-16s %10s %10s %10s %10s %9s\n",
		"step", "axis", "tag", "mode", "candidates", "frontier", "matches", "postings", "centers")
	for i, sp := range p.Steps {
		fmt.Printf("%-4d %-5s %-12s %-16s %10d %10d %10d %10d %9d\n",
			i, sp.Axis, sp.Tag, sp.Mode, sp.Candidates, sp.FrontierIn, sp.FrontierOut, sp.Postings, sp.Centers)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "hopiquery:", err)
	os.Exit(1)
}
