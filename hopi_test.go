package hopi

import (
	"bytes"
	"path/filepath"
	"testing"
)

// demoFiles is a tiny citation network used across the public-API
// tests.
func demoFiles() map[string][]byte {
	return map[string][]byte{
		"a.xml": []byte(`<bib><book><title>A</title><author id="au"/></book><cite href="b.xml"/></bib>`),
		"b.xml": []byte(`<bib><book><title>B</title><author/></book><cite href="c.xml#sec"/></bib>`),
		"c.xml": []byte(`<paper><section id="sec"><author/></section></paper>`),
	}
}

func demoIndex(t *testing.T, withDist bool) *Index {
	t.Helper()
	coll, err := ParseCollection(demoFiles())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.WithDistance = withDist
	opts.Seed = 1
	ix, err := Build(coll, opts)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestBuildAndReach(t *testing.T) {
	ix := demoIndex(t, false)
	coll := ix.Collection()
	a, _ := coll.DocByName("a.xml")
	b, _ := coll.DocByName("b.xml")
	c, _ := coll.DocByName("c.xml")
	if !ix.Reaches(coll.ElemID(a, 0), coll.ElemID(b, 0)) {
		t.Error("a should reach b via cite")
	}
	if !ix.Reaches(coll.ElemID(a, 0), coll.ElemID(c, 0)+1) {
		t.Error("a should reach c's section transitively")
	}
	if ix.Reaches(coll.ElemID(c, 0), coll.ElemID(a, 0)) {
		t.Error("citations are one-way")
	}
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceQueries(t *testing.T) {
	ix := demoIndex(t, true)
	coll := ix.Collection()
	a, _ := coll.DocByName("a.xml")
	b, _ := coll.DocByName("b.xml")
	// a's root → a's cite (1) → b's root (1)
	d, err := ix.Distance(coll.ElemID(a, 0), coll.ElemID(b, 0))
	if err != nil {
		t.Fatal(err)
	}
	if d != 2 {
		t.Errorf("Distance = %d, want 2", d)
	}
	d, _ = ix.Distance(coll.ElemID(b, 0), coll.ElemID(a, 0))
	if d != Infinite {
		t.Errorf("unreachable pair: %d", d)
	}
}

func TestPathQueries(t *testing.T) {
	ix := demoIndex(t, true)
	res, err := ix.Query("//book//author")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("//book//author: %+v", res)
	}
	// the bib of a.xml reaches all three authors via links
	res, err = ix.Query("//bib//author")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("//bib//author: %+v", res)
	}
	ranked, err := ix.QueryRanked("//bib//author")
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 3 {
		t.Fatalf("ranked: %+v", ranked)
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Score > ranked[i-1].Score {
			t.Error("ranked results out of order")
		}
	}
	if ranked[0].Doc == "" || ranked[0].Tag != "author" {
		t.Errorf("result metadata: %+v", ranked[0])
	}
}

func TestMaintenanceThroughPublicAPI(t *testing.T) {
	ix := demoIndex(t, false)
	coll := ix.Collection()
	// new paper citing a.xml
	nd := NewDocument("d.xml", "paper")
	cite := nd.AddElement(nd.Root(), "cite")
	doc, err := ix.InsertDocument(nd)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := coll.DocByName("a.xml")
	if err := ix.InsertEdge(coll.ElemID(doc, cite), coll.ElemID(a, 0)); err != nil {
		t.Fatal(err)
	}
	if !ix.Reaches(coll.ElemID(doc, 0), coll.ElemID(a, 1)) {
		t.Error("new paper should reach a's book")
	}
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
	// queries see the new document after engine refresh (automatic)
	res, err := ix.Query("//paper//book")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("//paper//book after insert: %+v", res)
	}
	// delete b.xml: a no longer reaches c
	b, _ := coll.DocByName("b.xml")
	fast, err := ix.DeleteDocument(b)
	if err != nil {
		t.Fatal(err)
	}
	if !fast {
		t.Error("b.xml separates the chain; fast path expected")
	}
	cdoc, _ := coll.DocByName("c.xml")
	if ix.Reaches(coll.ElemID(a, 0), coll.ElemID(cdoc, 0)+1) {
		t.Error("connection through deleted doc survived")
	}
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSaveOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "demo.hopi")
	ix := demoIndex(t, true)
	coll := ix.Collection()
	a, _ := coll.DocByName("a.xml")
	c, _ := coll.DocByName("c.xml")
	wantReach := ix.Reaches(coll.ElemID(a, 0), coll.ElemID(c, 0))
	wantDist, _ := ix.Distance(coll.ElemID(a, 0), coll.ElemID(c, 0))
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	coll2 := re.Collection()
	a2, ok := coll2.DocByName("a.xml")
	if !ok {
		t.Fatal("collection lost a.xml")
	}
	c2, _ := coll2.DocByName("c.xml")
	if re.Reaches(coll2.ElemID(a2, 0), coll2.ElemID(c2, 0)) != wantReach {
		t.Error("reachability changed across save/open")
	}
	d, err := re.Distance(coll2.ElemID(a2, 0), coll2.ElemID(c2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if d != wantDist {
		t.Errorf("distance changed: %d vs %d", d, wantDist)
	}
	if err := re.Validate(); err != nil {
		t.Fatal(err)
	}
	// maintenance works on a reopened index
	nd := NewDocument("e.xml", "paper")
	if _, err := re.InsertDocument(nd); err != nil {
		t.Fatal(err)
	}
	if err := re.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenStoreQueries(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "demo.hopi")
	ix := demoIndex(t, false)
	coll := ix.Collection()
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	st, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	a, _ := coll.DocByName("a.xml")
	b, _ := coll.DocByName("b.xml")
	got, err := st.Reaches(coll.ElemID(a, 0), coll.ElemID(b, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("store query disagrees with in-memory index")
	}
	if int64(ix.Size()) != st.Entries() {
		t.Errorf("entries: %d vs %d", ix.Size(), st.Entries())
	}
}

func TestCollectionBuilderAPI(t *testing.T) {
	coll := NewCollection()
	d1 := NewDocument("x.xml", "root")
	ch := d1.AddElement(d1.Root(), "child")
	d1.SetAnchor(ch, "c1")
	d1.AddIntraLink(d1.Root(), ch)
	id1 := coll.Add(d1)
	d2 := NewDocument("y.xml", "root")
	id2 := coll.Add(d2)
	if err := coll.AddLink(id2, 0, id1, ch); err != nil {
		t.Fatal(err)
	}
	if coll.NumDocs() != 2 || coll.NumElements() != 3 || coll.NumLinks() != 2 {
		t.Errorf("%s", coll)
	}
	if el, ok := coll.Anchor(id1, "c1"); !ok || el != coll.ElemID(id1, ch) {
		t.Error("anchor lookup failed")
	}
	// XML serialization parses back
	if !bytes.Contains(d1.XML(), []byte("href")) {
		t.Errorf("XML output missing link: %s", d1.XML())
	}
	ix, err := Build(coll, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !ix.Reaches(coll.ElemID(id2, 0), coll.ElemID(id1, ch)) {
		t.Error("builder-made link not indexed")
	}
}

func TestAddXMLUnresolvedLinks(t *testing.T) {
	coll := NewCollection()
	_, unresolved, err := coll.AddXML("solo.xml", []byte(`<a><b href="missing.xml#x"/></a>`))
	if err != nil {
		t.Fatal(err)
	}
	if len(unresolved) != 1 {
		t.Errorf("unresolved = %v", unresolved)
	}
	// adding the target later and linking by anchor
	_, _, err = coll.AddXML("missing.xml", []byte(`<r><s id="x"/></r>`))
	if err != nil {
		t.Fatal(err)
	}
}
