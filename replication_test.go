package hopi

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// --- helpers ----------------------------------------------------------

// replPrimary is a durable primary serving its replication stream on a
// real TCP listener whose address survives a simulated crash/restart.
type replPrimary struct {
	ix   *Index
	pub  *Publisher
	srv  *http.Server
	addr string
}

func (p *replPrimary) streamURL() string { return "http://" + p.addr + "/repl/stream" }

// startReplPrimary creates a durable index at path and serves its
// publisher at addr ("" picks a free port).
func startReplPrimary(t *testing.T, ix *Index, addr string, opts ...PublishOption) *replPrimary {
	t.Helper()
	pub, err := ix.StartPublisher(opts...)
	if err != nil {
		t.Fatal(err)
	}
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.Handle("GET /repl/stream", pub)
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return &replPrimary{ix: ix, pub: pub, srv: srv, addr: ln.Addr().String()}
}

// stop closes the publisher (ending follower streams) and the HTTP
// server. The index is left alone — crash it or Close it separately.
func (p *replPrimary) stop() {
	p.pub.Close()
	p.srv.Close()
}

func createPrimary(t *testing.T, path string) (*Index, []string) {
	t.Helper()
	coll, base := baseCollection(t)
	opts := DefaultOptions()
	opts.WithDistance = true
	opts.Seed = 1
	ix, err := Create(path, coll, opts)
	if err != nil {
		t.Fatal(err)
	}
	return ix, base
}

func followFast(t *testing.T, url string) *Index {
	t.Helper()
	fol, err := Follow(url,
		FollowTimeout(15*time.Second),
		FollowReconnect(5*time.Millisecond, 100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fol.Close() })
	return fol
}

// waitCaughtUp blocks until the follower has applied the primary's
// committed sequence.
func waitCaughtUp(t *testing.T, fol *Index, primary *Index) {
	t.Helper()
	_, want, ok := primary.WALSize()
	if !ok {
		t.Fatal("primary is not durable")
	}
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if fol.ReplicaStatus().AppliedSeq >= want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("follower stuck at seq %d, primary at %d (status %+v)",
		fol.ReplicaStatus().AppliedSeq, want, fol.ReplicaStatus())
}

// assertLabelEquality asserts the follower holds byte-identical
// Lin/Lout labels to the primary — the store==memory property from the
// durable tests, lifted across the replication wire.
func assertLabelEquality(t *testing.T, fol, primary *Index, label string) {
	t.Helper()
	pc := primary.ix.Cover()
	fc := fol.ix.Cover()
	if fc.N() != pc.N() {
		t.Fatalf("%s: follower has %d nodes, primary %d", label, fc.N(), pc.N())
	}
	if fc.WithDist != pc.WithDist {
		t.Fatalf("%s: WithDist %v vs %v", label, fc.WithDist, pc.WithDist)
	}
	for v := int32(0); v < int32(pc.N()); v++ {
		if !equalEntries(fc.Lin(v), pc.Lin(v)) {
			t.Fatalf("%s: Lin(%d) follower %v, primary %v", label, v, fc.Lin(v), pc.Lin(v))
		}
		if !equalEntries(fc.Lout(v), pc.Lout(v)) {
			t.Fatalf("%s: Lout(%d) follower %v, primary %v", label, v, fc.Lout(v), pc.Lout(v))
		}
	}
}

// --- acceptance: convergence under concurrent traffic ----------------

// TestReplicationFollowerConvergesUnderLoad starts a follower from
// nothing against a live primary, applies a long randomized maintenance
// script (including rebuilds, which ship as wholesale snapshots) while
// readers continuously query the follower, and asserts the follower
// converges to byte-identical cover labels once the stream quiesces.
func TestReplicationFollowerConvergesUnderLoad(t *testing.T) {
	dir := t.TempDir()
	ix, base := createPrimary(t, filepath.Join(dir, "p.hopi"))
	defer ix.Close()
	// small tail + a mid-script checkpoint: exercises the tail, WAL,
	// and snapshot-reset feed paths
	p := startReplPrimary(t, ix, "", PublishTail(4), PublishHeartbeat(20*time.Millisecond))
	defer p.stop()

	fol := followFast(t, p.streamURL())

	ops := randomScript(rand.New(rand.NewSource(7)), base, 60, true)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	queryErr := make(chan error, 1)
	// readers: hammer the follower's snapshots while batches replay
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := fol.Snapshot()
				res, err := snap.Query("//article//author")
				if err != nil {
					select {
					case queryErr <- fmt.Errorf("query: %w", err):
					default:
					}
					return
				}
				// every match must be a live, correctly tagged element of
				// the snapshot's own collection
				coll := snap.Collection()
				for _, m := range res {
					if coll.Tag(m.Element) != "author" {
						select {
						case queryErr <- fmt.Errorf("match %d has tag %q", m.Element, coll.Tag(m.Element)):
						default:
						}
						return
					}
				}
			}
		}()
	}

	for i, op := range ops {
		if _, err := ix.Apply(context.Background(), buildScriptBatch(op)); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if i == len(ops)/2 {
			// fold the WAL away mid-script so a lagging follower would
			// have to take the snapshot-reset path
			if err := ix.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	waitCaughtUp(t, fol, ix)
	close(stop)
	wg.Wait()
	select {
	case err := <-queryErr:
		t.Fatal(err)
	default:
	}

	assertLabelEquality(t, fol, ix, "after quiesce")
	assertSameAnswers(t, fol, ix, "follower answers")
	if st := fol.ReplicaStatus(); st.Role != "replica" || st.Lag != 0 || !st.Connected {
		t.Fatalf("follower status %+v", st)
	}
}

// TestReplicationFollowerRestartCatchesUp kills a follower mid-stream,
// keeps writing, and verifies a restarted follower (fresh, from
// nothing — in-memory replicas hold no local state) converges again.
func TestReplicationFollowerRestartCatchesUp(t *testing.T) {
	dir := t.TempDir()
	ix, base := createPrimary(t, filepath.Join(dir, "p.hopi"))
	defer ix.Close()
	p := startReplPrimary(t, ix, "", PublishHeartbeat(20*time.Millisecond))
	defer p.stop()

	ops := randomScript(rand.New(rand.NewSource(11)), base, 30, false)
	fol := followFast(t, p.streamURL())
	for i, op := range ops {
		if _, err := ix.Apply(context.Background(), buildScriptBatch(op)); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if i == 10 {
			// kill the follower mid-stream
			if err := fol.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// the dead follower must not have advanced past the kill point
	if fol.ReplicaStatus().Connected {
		t.Fatal("closed follower still connected")
	}

	re := followFast(t, p.streamURL())
	waitCaughtUp(t, re, ix)
	assertLabelEquality(t, re, ix, "restarted follower")
	assertSameAnswers(t, re, ix, "restarted follower answers")
}

// TestReplicationPrimaryCrashRestart kills the primary (kill -9
// semantics: no checkpoint, no close; the simulated-crash helper from
// the durable tests), restarts it on the same address, and verifies
// the follower reconnects, resumes, and converges on post-restart
// writes.
func TestReplicationPrimaryCrashRestart(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.hopi")
	ix, base := createPrimary(t, path)
	p := startReplPrimary(t, ix, "", PublishHeartbeat(20*time.Millisecond))

	ops := randomScript(rand.New(rand.NewSource(13)), base, 24, false)
	for i := 0; i < 12; i++ {
		if _, err := ix.Apply(context.Background(), buildScriptBatch(ops[i])); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	fol := followFast(t, p.streamURL())
	waitCaughtUp(t, fol, ix)

	// kill -9: abandon the index without checkpoint, close the server
	addr := p.addr
	p.stop()
	crash(ix)

	re, err := Open(path, Durable())
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer re.Close()
	p2 := startReplPrimary(t, re, addr, PublishHeartbeat(20*time.Millisecond))
	defer p2.stop()

	for i := 12; i < len(ops); i++ {
		if _, err := re.Apply(context.Background(), buildScriptBatch(ops[i])); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	waitCaughtUp(t, fol, re)
	assertLabelEquality(t, fol, re, "after primary restart")
	assertSameAnswers(t, fol, re, "after primary restart")
}

// --- read-only contract ----------------------------------------------

func TestReplicationFollowerIsReadOnly(t *testing.T) {
	dir := t.TempDir()
	ix, _ := createPrimary(t, filepath.Join(dir, "p.hopi"))
	defer ix.Close()
	p := startReplPrimary(t, ix, "")
	defer p.stop()
	fol := followFast(t, p.streamURL())

	b := NewBatch()
	b.InsertDocument(NewDocument("x.xml", "article"))
	if _, err := fol.Apply(context.Background(), b); !errors.Is(err, ErrReadOnlyReplica) {
		t.Fatalf("Apply on follower: err = %v, want ErrReadOnlyReplica", err)
	}
	if err := fol.InsertEdge(0, 1); !errors.Is(err, ErrReadOnlyReplica) {
		t.Fatalf("InsertEdge on follower: err = %v, want ErrReadOnlyReplica", err)
	}
	if _, err := fol.StartPublisher(); err == nil {
		t.Fatal("StartPublisher on a follower should fail")
	}
}

// --- resume-token portability ----------------------------------------

// TestReplicationTokenPortability pages through a query on one replica
// and resumes the walk on another: with sequence-derived epochs the
// token is valid on any replica that has applied the same batch, and
// the continued pages are identical.
func TestReplicationTokenPortability(t *testing.T) {
	dir := t.TempDir()
	ix, _ := createPrimary(t, filepath.Join(dir, "p.hopi"))
	defer ix.Close()
	p := startReplPrimary(t, ix, "")
	defer p.stop()

	// one write so the token is minted at a non-trivial sequence
	b := NewBatch()
	d := NewDocument("extra.xml", "article")
	d.AddElement(d.Root(), "author")
	b.InsertDocument(d)
	if _, err := ix.Apply(context.Background(), b); err != nil {
		t.Fatal(err)
	}

	f1 := followFast(t, p.streamURL())
	f2 := followFast(t, p.streamURL())
	waitCaughtUp(t, f1, ix)
	waitCaughtUp(t, f2, ix)

	ctx := context.Background()
	pq, err := Prepare("//author")
	if err != nil {
		t.Fatal(err)
	}
	full, err := ix.Query("//author")
	if err != nil {
		t.Fatal(err)
	}
	if len(full) < 3 {
		t.Fatalf("need >= 3 matches, have %d", len(full))
	}

	// page 1 on replica 1
	cur, err := f1.Run(ctx, pq, QueryLimit(2))
	if err != nil {
		t.Fatal(err)
	}
	var page1 []QueryResult
	for cur.Next() {
		page1 = append(page1, cur.Result())
	}
	if !cur.HasMore() {
		t.Fatal("expected more results after page 1")
	}
	token := cur.Token()
	cur.Close()

	// primary, replica 1 and replica 2 agree on the epoch
	if e1, e2, e3 := ix.Snapshot().Epoch(), f1.Snapshot().Epoch(), f2.Snapshot().Epoch(); e1 != e2 || e2 != e3 {
		t.Fatalf("epochs diverge: primary %d, f1 %d, f2 %d", e1, e2, e3)
	}

	// resume on replica 2 — and, for reference, on the primary
	for name, target := range map[string]*Index{"replica2": f2, "primary": ix} {
		cur2, err := target.Run(ctx, pq, QueryResume(token))
		if err != nil {
			t.Fatalf("resume on %s: %v", name, err)
		}
		var rest []QueryResult
		for cur2.Next() {
			rest = append(rest, cur2.Result())
		}
		cur2.Close()
		if got, want := len(page1)+len(rest), len(full); got != want {
			t.Fatalf("resume on %s: %d + %d results, want %d total", name, len(page1), len(rest), want)
		}
		for i, m := range rest {
			if m.Element != full[len(page1)+i].Element {
				t.Fatalf("resume on %s: result %d = element %d, want %d", name, i, m.Element, full[len(page1)+i].Element)
			}
		}
	}
}

// TestStaleTokenRetryable pins the StaleTokenError matrix: on
// sequence-epoch snapshots a token from a newer epoch is retryable
// (the replica is behind), one from an older epoch is not, and
// in-memory random epochs are never retryable.
func TestStaleTokenRetryable(t *testing.T) {
	dir := t.TempDir()
	ix, _ := createPrimary(t, filepath.Join(dir, "p.hopi"))
	defer ix.Close()

	ctx := context.Background()
	pq, err := Prepare("//author")
	if err != nil {
		t.Fatal(err)
	}
	old := ix.Snapshot() // epoch = seq N

	b := NewBatch()
	d := NewDocument("extra.xml", "article")
	d.AddElement(d.Root(), "author")
	b.InsertDocument(d)
	if _, err := ix.Apply(ctx, b); err != nil {
		t.Fatal(err)
	}
	fresh := ix.Snapshot() // epoch = seq N+1
	if fresh.Epoch() != old.Epoch()+1 {
		t.Fatalf("durable epochs not sequential: %d then %d", old.Epoch(), fresh.Epoch())
	}

	mint := func(s *Snapshot) string {
		cur, err := s.Run(ctx, pq, QueryLimit(1))
		if err != nil {
			t.Fatal(err)
		}
		for cur.Next() {
		}
		tok := cur.Token()
		cur.Close()
		return tok
	}

	// token from the future (replica behind): retryable
	var stale *StaleTokenError
	_, err = old.Run(ctx, pq, QueryResume(mint(fresh)))
	if !errors.As(err, &stale) || !stale.Retryable {
		t.Fatalf("future token on old snapshot: err = %v, want retryable StaleTokenError", err)
	}
	if !errors.Is(err, ErrStaleToken) {
		t.Fatalf("StaleTokenError does not match ErrStaleToken: %v", err)
	}

	// token from the past (state moved on): not retryable
	_, err = fresh.Run(ctx, pq, QueryResume(mint(old)))
	if !errors.As(err, &stale) || stale.Retryable {
		t.Fatalf("past token on fresh snapshot: err = %v, want non-retryable StaleTokenError", err)
	}

	// in-memory indexes keep random epochs: mismatches are never
	// retryable, whatever the ordering
	coll, _ := baseCollection(t)
	opts := DefaultOptions()
	opts.Seed = 1
	mem, err := Build(coll, opts)
	if err != nil {
		t.Fatal(err)
	}
	memOld := mem.Snapshot()
	if err := mem.InsertEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	_, err = mem.Snapshot().Run(ctx, pq, QueryResume(mint(memOld)))
	if !errors.As(err, &stale) || stale.Retryable {
		t.Fatalf("in-memory stale token: err = %v, want non-retryable StaleTokenError", err)
	}

	// a token from a different index carries a different replication
	// scope: rejected as a bad token outright — never accepted by
	// coincidental sequence equality, never a retryable 503
	_, err = fresh.Run(ctx, pq, QueryResume(mint(mem.Snapshot())))
	if !errors.Is(err, ErrBadToken) {
		t.Fatalf("cross-index token: err = %v, want ErrBadToken", err)
	}
	_, err = mem.Snapshot().Run(ctx, pq, QueryResume(mint(fresh)))
	if !errors.Is(err, ErrBadToken) {
		t.Fatalf("cross-index token (reverse): err = %v, want ErrBadToken", err)
	}
}
