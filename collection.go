package hopi

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"hopi/internal/xmlmodel"
)

// Collection is a set of XML documents plus the intra- and
// inter-document links between their elements — the unit HOPI indexes.
// Build one with NewCollection/AddXML/NewDocument, or parse a whole
// file set at once with ParseCollection.
type Collection struct {
	c *xmlmodel.Collection
}

// NewCollection returns an empty collection.
func NewCollection() *Collection {
	return &Collection{c: xmlmodel.NewCollection()}
}

// ParseCollection parses a set of named XML documents and resolves
// their links: id/xml:id attributes declare anchors, idref and
// href="#id" attributes become intra-document links, and
// href="other.xml#id" attributes become inter-document links
// (links to documents outside the set are ignored).
func ParseCollection(files map[string][]byte) (*Collection, error) {
	c, err := xmlmodel.ParseCollection(files)
	if err != nil {
		return nil, err
	}
	return &Collection{c: c}, nil
}

// AddXML parses one XML document and adds it. Cross-document links in
// the document are resolved against documents already in the
// collection; unresolvable ones are returned (they can be re-attempted
// later or ignored).
func (c *Collection) AddXML(name string, data []byte) (DocID, []string, error) {
	doc, pending, err := xmlmodel.ParseDocument(name, data)
	if err != nil {
		return 0, nil, err
	}
	idx := c.c.AddDocument(doc)
	var unresolved []string
	for _, p := range pending {
		if err := c.c.AddLinkByAnchor(idx, p.FromLocal, p.TargetDoc, p.Anchor); err != nil {
			unresolved = append(unresolved, p.TargetDoc+"#"+p.Anchor)
		}
	}
	return DocID(idx), unresolved, nil
}

// DocID identifies a document within a collection.
type DocID int

// ElemID identifies an element globally within a collection; all index
// queries speak ElemIDs.
type ElemID = int32

// Document is a single XML document under construction. Create it with
// NewDocument, add elements, then attach it with Collection.Add.
type Document struct {
	d *xmlmodel.Document
}

// NewDocument creates a document with a root element of the given tag.
func NewDocument(name, rootTag string) *Document {
	return &Document{d: xmlmodel.NewDocument(name, rootTag)}
}

// Root returns the root element's local index (always 0).
func (d *Document) Root() int32 { return 0 }

// AddElement appends a child element under parent (a local index) and
// returns the new element's local index.
func (d *Document) AddElement(parent int32, tag string) int32 {
	return d.d.AddElement(parent, tag)
}

// SetAnchor declares an id anchor on a local element.
func (d *Document) SetAnchor(local int32, id string) { d.d.SetAnchor(local, id) }

// AddIntraLink records a link between two elements of this document.
func (d *Document) AddIntraLink(from, to int32) { d.d.AddIntraLink(from, to) }

// Len returns the number of elements.
func (d *Document) Len() int { return d.d.Len() }

// XML serializes the document, materializing intra-document links as
// <link href="#id"/> children.
func (d *Document) XML() []byte { return xmlmodel.WriteXML(d.d) }

// Add attaches a built document to the collection.
func (c *Collection) Add(d *Document) DocID {
	return DocID(c.c.AddDocument(d.d))
}

// AddLink records a link between two elements identified by
// (document, local index) pairs. Same-document links become
// intra-document links automatically.
func (c *Collection) AddLink(fromDoc DocID, fromLocal int32, toDoc DocID, toLocal int32) error {
	return c.c.AddLink(c.c.GlobalID(int(fromDoc), fromLocal), c.c.GlobalID(int(toDoc), toLocal))
}

// ElemID maps a (document, local element) pair to the global element
// ID used by all index queries.
func (c *Collection) ElemID(doc DocID, local int32) ElemID {
	return c.c.GlobalID(int(doc), local)
}

// DocOf returns the document owning a global element ID.
func (c *Collection) DocOf(id ElemID) DocID { return DocID(c.c.DocOfID(id)) }

// DocName returns a document's name.
func (c *Collection) DocName(doc DocID) string { return c.c.Docs[doc].Name }

// DocByName finds a live document by name.
func (c *Collection) DocByName(name string) (DocID, bool) {
	i, ok := c.c.DocByName(name)
	return DocID(i), ok
}

// Tag returns the element tag of a global ID.
func (c *Collection) Tag(id ElemID) string { return c.c.Tag(id) }

// Anchor resolves an anchor id within a document to its global ID.
func (c *Collection) Anchor(doc DocID, anchor string) (ElemID, bool) {
	local, ok := c.c.Docs[doc].AnchorElement(anchor)
	if !ok {
		return 0, false
	}
	return c.c.GlobalID(int(doc), local), true
}

// ParseElementSpec splits a textual element address into its parts.
// Accepted forms: "docname" (local 0, the document root),
// "docname:localIndex", and "docname#anchor". It is the grammar behind
// ResolveElement and the name-based batch operations; parsing does not
// consult any collection.
func ParseElementSpec(spec string) (doc string, local int32, anchor string, err error) {
	if spec == "" {
		return "", 0, "", fmt.Errorf("hopi: empty element spec")
	}
	if i := strings.IndexByte(spec, '#'); i >= 0 {
		return spec[:i], 0, spec[i+1:], nil
	}
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		n, err := strconv.Atoi(spec[i+1:])
		if err != nil {
			return "", 0, "", fmt.Errorf("hopi: bad local index in %q", spec)
		}
		return spec[:i], int32(n), "", nil
	}
	return spec, 0, "", nil
}

// ResolveElement resolves a textual element address (see
// ParseElementSpec for the accepted forms) to a global ID. The cmd
// tools and hopiserve address elements this way. Resolution failures
// wrap ErrNotFound.
func (c *Collection) ResolveElement(spec string) (ElemID, error) {
	name, local, anchor, err := ParseElementSpec(spec)
	if err != nil {
		return 0, err
	}
	doc, ok := c.DocByName(name)
	if !ok {
		return 0, fmt.Errorf("hopi: document %q: %w", name, ErrNotFound)
	}
	if anchor != "" {
		id, ok := c.Anchor(doc, anchor)
		if !ok {
			return 0, fmt.Errorf("hopi: anchor %q in %q: %w", anchor, name, ErrNotFound)
		}
		return id, nil
	}
	if local < 0 || int(local) >= c.c.Docs[doc].Len() {
		return 0, fmt.Errorf("hopi: element %d out of range for %q", local, name)
	}
	return c.ElemID(doc, local), nil
}

// NumDocs returns the number of live documents.
func (c *Collection) NumDocs() int { return c.c.NumDocs() }

// NumElements returns the number of elements of live documents.
func (c *Collection) NumElements() int { return c.c.NumElements() }

// NumLinks returns the number of links (intra + inter) of live
// documents.
func (c *Collection) NumLinks() int { return c.c.NumLinks() }

// ApproxXMLBytes estimates the serialized size of the collection.
func (c *Collection) ApproxXMLBytes() int64 { return c.c.ApproxXMLBytes() }

// Encode writes the collection to w (see Index.Save for persisting a
// collection together with its index).
func (c *Collection) Encode(w io.Writer) error { return c.c.Encode(w) }

// DecodeCollection reads a collection written by Encode.
func DecodeCollection(r io.Reader) (*Collection, error) {
	cc, err := xmlmodel.DecodeCollection(r)
	if err != nil {
		return nil, err
	}
	return &Collection{c: cc}, nil
}

// Unwrap gives access to the internal representation; it is exported
// for the cmd tools and experiment harness inside this module and is
// not part of the stable API.
func (c *Collection) Unwrap() *xmlmodel.Collection { return c.c }

// WrapCollection adopts an internal collection (e.g. one produced by
// the synthetic generators); like Unwrap it exists for this module's
// tools and is not part of the stable API.
func WrapCollection(c *xmlmodel.Collection) *Collection { return &Collection{c: c} }

// String summarizes the collection for logs and examples.
func (c *Collection) String() string {
	return fmt.Sprintf("Collection{docs: %d, elements: %d, links: %d}",
		c.NumDocs(), c.NumElements(), c.NumLinks())
}
