package hopi

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func createSegmented(t *testing.T, path string, open ...OpenOption) (*Index, []string) {
	t.Helper()
	coll, base := baseCollection(t)
	opts := DefaultOptions()
	opts.WithDistance = true
	opts.Seed = 1
	ix, err := Create(path, coll, opts, append([]OpenOption{Segments()}, open...)...)
	if err != nil {
		t.Fatal(err)
	}
	return ix, base
}

// TestSegmentsCreateApplyReopen is the segment-backend mirror of the
// B-tree round trip: create, churn (including rebuilds, which reseal
// the whole stack), close, reopen durable and plain, compare against a
// purely in-memory oracle.
func TestSegmentsCreateApplyReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ix.hopi")
	ix, base := createSegmented(t, path)
	if !ix.Durable() {
		t.Fatal("Create returned a non-durable index")
	}
	if st := ix.SegmentStats(); !st.Enabled || st.Segments != 1 {
		t.Fatalf("fresh segment stats = %+v", st)
	}
	ops := randomScript(rand.New(rand.NewSource(7)), base, 40, true)
	for i, op := range ops {
		if _, err := ix.Apply(context.Background(), buildScriptBatch(op)); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	want := oracle(t, ops, len(ops), true)
	assertSameAnswers(t, ix, want, "live segmented")
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(path, Durable())
	if err != nil {
		t.Fatal(err)
	}
	assertSameAnswers(t, re, want, "durable reopen")
	if st := re.SegmentStats(); !st.Enabled {
		t.Fatal("reopened index lost its segment backend")
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}

	// plain (in-memory) mode auto-detects the segment store too
	mem, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	assertSameAnswers(t, mem, want, "plain reopen")
	if mem.Durable() {
		t.Fatal("plain open attached a backend")
	}
}

// TestSegmentsCrashRecovery kills the index without a checkpoint and
// reopens: the WAL tail must replay over the sealed base. Reopening
// twice exercises the manifest-sequence guard — the first reopen's
// final checkpoint seals the tail, the second must not double-apply it.
func TestSegmentsCrashRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ix.hopi")
	ix, base := createSegmented(t, path)
	ops := randomScript(rand.New(rand.NewSource(21)), base, 25, false)
	for i, op := range ops {
		if _, err := ix.Apply(context.Background(), buildScriptBatch(op)); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	crash(ix)
	want := oracle(t, ops, len(ops), true)

	re, err := Open(path, Durable())
	if err != nil {
		t.Fatal(err)
	}
	assertSameAnswers(t, re, want, "after crash")
	crash(re) // again without a clean close: replay must be idempotent

	re2, err := Open(path, Durable())
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	assertSameAnswers(t, re2, want, "second reopen")
}

// TestSegmentsAutoSealAndCompaction drives enough churn through a tiny
// seal threshold and stack bound that Apply seals mid-script and the
// background compactor folds the stack, all while the index keeps
// serving correct answers and previously issued resume tokens stay
// valid (checkpoints do not advance the epoch).
func TestSegmentsAutoSealAndCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ix.hopi")
	ix, base := createSegmented(t, path, SegmentThreshold(16), SegmentMaxStack(2))
	defer ix.Close()

	ops := randomScript(rand.New(rand.NewSource(3)), base, 50, false)
	half := len(ops) / 2
	for i := 0; i < half; i++ {
		if _, err := ix.Apply(context.Background(), buildScriptBatch(ops[i])); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}

	// issue a cursor mid-churn, then checkpoint explicitly: the token
	// must survive the seal (same logical state, same epoch)
	snap := ix.Snapshot()
	pq, err := Prepare("//article//author")
	if err != nil {
		t.Fatal(err)
	}
	cur, err := snap.Run(context.Background(), pq, QueryLimit(2))
	if err != nil {
		t.Fatal(err)
	}
	cur.Next()
	token := cur.Token()
	if err := ix.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if token != "" {
		if _, err := ix.Snapshot().Run(context.Background(), pq, QueryResume(token)); err != nil {
			t.Fatalf("resume token died across a seal checkpoint: %v", err)
		}
	}

	for i := half; i < len(ops); i++ {
		if _, err := ix.Apply(context.Background(), buildScriptBatch(ops[i])); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	assertSameAnswers(t, ix, oracle(t, ops, len(ops), true), "after auto-seals")

	st := ix.SegmentStats()
	if st.SealedSeq == 0 {
		t.Fatalf("threshold never sealed: %+v", st)
	}
	// drain the compactor: with MaxStack 2 the stack must eventually
	// fold back under the bound
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st = ix.SegmentStats()
		if st.CompactionBacklog == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.CompactionBacklog != 0 {
		t.Fatalf("compaction backlog never drained: %+v", st)
	}
	if st.Compactions == 0 {
		t.Fatalf("no compaction ran despite MaxStack 2: %+v", st)
	}
}

// TestSegmentsQueryEquivalenceUnderChurn runs the segmented index and
// a flat in-memory twin through the same script while readers verify,
// on identical snapshots, that boolean, ranked, and resume-token page
// walks return identical results. Run with -race this also exercises
// reads against the mmap'd base concurrent with seals and compactions.
func TestSegmentsQueryEquivalenceUnderChurn(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ix.hopi")
	seg, base := createSegmented(t, path, SegmentThreshold(8), SegmentMaxStack(2))
	defer seg.Close()
	coll2, _ := baseCollection(t)
	bopts := DefaultOptions()
	bopts.WithDistance = true
	bopts.Seed = 1
	flat, err := Build(coll2, bopts)
	if err != nil {
		t.Fatal(err)
	}

	exprs := []string{"//article//author", "//bib//title", "/article/cite", "//book//author"}
	compare := func(stage int) {
		t.Helper()
		ss, fs := seg.Snapshot(), flat.Snapshot()
		for _, expr := range exprs {
			sres, err := ss.Query(expr)
			if err != nil {
				t.Fatalf("stage %d %q seg: %v", stage, expr, err)
			}
			fres, err := fs.Query(expr)
			if err != nil {
				t.Fatalf("stage %d %q flat: %v", stage, expr, err)
			}
			if len(sres) != len(fres) {
				t.Fatalf("stage %d %q: %d vs %d results", stage, expr, len(sres), len(fres))
			}
			for i := range sres {
				if sres[i].Element != fres[i].Element || sres[i].Doc != fres[i].Doc {
					t.Fatalf("stage %d %q result %d: %+v vs %+v", stage, expr, i, sres[i], fres[i])
				}
			}
			// ranked: scores must match exactly (same distances)
			srk, err := ss.QueryRanked(expr)
			if err != nil {
				t.Fatalf("stage %d ranked %q seg: %v", stage, expr, err)
			}
			frk, err := fs.QueryRanked(expr)
			if err != nil {
				t.Fatalf("stage %d ranked %q flat: %v", stage, expr, err)
			}
			if len(srk) != len(frk) {
				t.Fatalf("stage %d ranked %q: %d vs %d", stage, expr, len(srk), len(frk))
			}
			for i := range srk {
				if srk[i].Element != frk[i].Element || srk[i].Score != frk[i].Score {
					t.Fatalf("stage %d ranked %q result %d: %+v vs %+v", stage, expr, i, srk[i], frk[i])
				}
			}
			// page walk: 2-at-a-time cursor over the segmented snapshot
			// must enumerate exactly the full result set
			pq, err := Prepare(expr)
			if err != nil {
				t.Fatal(err)
			}
			var walked []QueryResult
			token := ""
			for {
				opts := []QueryOption{QueryLimit(2)}
				if token != "" {
					opts = append(opts, QueryResume(token))
				}
				cur, err := ss.Run(context.Background(), pq, opts...)
				if err != nil {
					t.Fatalf("stage %d walk %q: %v", stage, expr, err)
				}
				got := 0
				for cur.Next() {
					walked = append(walked, cur.Result())
					got++
				}
				if err := cur.Err(); err != nil {
					t.Fatalf("stage %d walk %q: %v", stage, expr, err)
				}
				token = cur.Token()
				if got < 2 || token == "" {
					break
				}
			}
			if len(walked) != len(fres) {
				t.Fatalf("stage %d walk %q: %d walked, %d expected", stage, expr, len(walked), len(fres))
			}
			for i := range walked {
				if walked[i].Element != fres[i].Element {
					t.Fatalf("stage %d walk %q item %d: %v vs %v", stage, expr, i, walked[i].Element, fres[i].Element)
				}
			}
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	readErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		// concurrent reader on the segmented side only: races against
		// seals and compactions, correctness checked by the main loop
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := seg.Snapshot()
			if _, err := snap.Query("//article//author"); err != nil {
				select {
				case readErr <- fmt.Errorf("concurrent query: %w", err):
				default:
				}
				return
			}
		}
	}()

	ops := randomScript(rand.New(rand.NewSource(11)), base, 60, true)
	for i, op := range ops {
		if _, err := seg.Apply(context.Background(), buildScriptBatch(op)); err != nil {
			t.Fatalf("seg op %d: %v", i, err)
		}
		if _, err := flat.Apply(context.Background(), buildScriptBatch(op)); err != nil {
			t.Fatalf("flat op %d: %v", i, err)
		}
		if i%10 == 9 {
			compare(i)
		}
	}
	compare(len(ops))
	close(stop)
	wg.Wait()
	select {
	case err := <-readErr:
		t.Fatal(err)
	default:
	}
}

// TestSegmentsReplication bootstraps a follower from a segmented
// primary's sealed files, converges it under churn, and checks label
// equality — the verbatim-file bootstrap path end to end.
func TestSegmentsReplication(t *testing.T) {
	dir := t.TempDir()
	ix, base := createSegmented(t, filepath.Join(dir, "p.hopi"), SegmentThreshold(16))
	defer ix.Close()
	// churn before the follower exists so the image has sealed segments
	// and a non-empty residual delta
	ops := randomScript(rand.New(rand.NewSource(5)), base, 40, true)
	half := len(ops) / 2
	for i := 0; i < half; i++ {
		if _, err := ix.Apply(context.Background(), buildScriptBatch(ops[i])); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	p := startReplPrimary(t, ix, "", PublishTail(4), PublishHeartbeat(20*time.Millisecond))
	defer p.stop()

	fol, err := Follow(p.streamURL(),
		FollowTimeout(15*time.Second),
		FollowDir(dir),
		FollowReconnect(5*time.Millisecond, 100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Close()
	if !fol.ix.Cover().Seg() {
		t.Fatal("follower did not adopt the primary's segment files")
	}
	waitCaughtUp(t, fol, ix)
	assertLabelEquality(t, fol, ix, "after bootstrap")

	// keep churning (including rebuilds, which ship as wholesale
	// ClearAll snapshots and flip the follower back to flat mode)
	for i := half; i < len(ops); i++ {
		if _, err := ix.Apply(context.Background(), buildScriptBatch(ops[i])); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	waitCaughtUp(t, fol, ix)
	assertLabelEquality(t, fol, ix, "after churn")
	assertSameAnswers(t, fol, oracle(t, ops, len(ops), true), "follower vs oracle")
}
