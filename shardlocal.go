package hopi

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"hopi/internal/shardrouter"
)

// retainSnapshots is how many recent snapshots a shard keeps around
// for mid-flight queries (see StepRequest.Retain). Snapshots are
// immutable views sharing structure, so the ring costs little; it
// bounds how long a burst of writes can outrun an in-flight query
// before the query must re-pin.
const retainSnapshots = 32

// localShard adapts an in-process Index to the router's Conn
// interface. It is how tests and hopibench run a whole shard tier in
// one process, and the reference implementation the HTTP transport
// mirrors.
type localShard struct {
	name string
	ix   *Index

	mu       sync.Mutex
	retained []*Snapshot // most recent first, distinct epochs
}

// NewLocalShard wraps an in-process index as a router shard
// connection.
func NewLocalShard(name string, ix *Index) shardrouter.Conn {
	return &localShard{name: name, ix: ix}
}

func (l *localShard) Name() string { return l.name }

// remember adds s to the retention ring (it is a no-op when s's epoch
// is already the newest entry, the common case between writes).
func (l *localShard) remember(s *Snapshot) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.retained) > 0 && l.retained[0].epoch == s.epoch {
		return
	}
	for i, r := range l.retained {
		if r.epoch == s.epoch {
			copy(l.retained[1:i+1], l.retained[:i])
			l.retained[0] = s
			return
		}
	}
	l.retained = append(l.retained, nil)
	copy(l.retained[1:], l.retained)
	l.retained[0] = s
	if len(l.retained) > retainSnapshots {
		l.retained = l.retained[:retainSnapshots]
	}
}

func (l *localShard) lookup(epoch uint64) *Snapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, r := range l.retained {
		if r.epoch == epoch {
			return r
		}
	}
	return nil
}

// pin returns the snapshot a request runs against, verifying the
// pinned epoch: the router's multi-RPC evaluation must never mix two
// shard states. When the shard has moved on, a retain-flagged request
// (a fresh query mid-evaluation) may still be served from the
// retention ring; anything else is answered with the shard's actual
// position and the router re-pins or fails the resume.
func (l *localShard) pin(epoch uint64, pinned, retain bool) (*Snapshot, error) {
	s := l.ix.Snapshot()
	l.remember(s)
	if !pinned || s.epoch == epoch {
		return s, nil
	}
	if retain {
		if old := l.lookup(epoch); old != nil {
			return old, nil
		}
	}
	return nil, &shardrouter.EpochMismatchError{
		Shard: l.name, Want: epoch, Current: s.epoch,
		Scope: s.scope, SeqEpoch: s.seqEpoch,
	}
}

func (l *localShard) Step(ctx context.Context, req *shardrouter.StepRequest) (*shardrouter.StepResponse, error) {
	s, err := l.pin(req.Epoch, req.Pin, req.Retain)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	resp, err := s.ShardStep(ctx, req)
	if err == nil && req.Trace != "" {
		// In-process shards have no queue or encode legs — only eval.
		resp.Span = &shardrouter.Span{Trace: req.Trace, EvalUs: time.Since(t0).Microseconds()}
	}
	return resp, err
}

func (l *localShard) Deliver(ctx context.Context, req *shardrouter.DeliverRequest) (*shardrouter.DeliverResponse, error) {
	s, err := l.pin(req.Epoch, true, req.Retain)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	resp, err := s.ShardDeliver(ctx, req)
	if err == nil && req.Trace != "" {
		resp.Span = &shardrouter.Span{Trace: req.Trace, EvalUs: time.Since(t0).Microseconds()}
	}
	return resp, err
}

func (l *localShard) Closure(ctx context.Context, req *shardrouter.ClosureRequest) (*shardrouter.ClosureResponse, error) {
	s, err := l.pin(req.Epoch, true, req.Retain)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	resp, err := s.ShardClosure(ctx, req)
	if err == nil && req.Trace != "" {
		resp.Span = &shardrouter.Span{Trace: req.Trace, EvalUs: time.Since(t0).Microseconds()}
	}
	return resp, err
}

func (l *localShard) Resolve(ctx context.Context, specs []string) ([]shardrouter.ResolveResult, error) {
	return l.ix.Snapshot().ShardResolve(specs), nil
}

func (l *localShard) Info(ctx context.Context) (*shardrouter.ShardInfo, error) {
	s := l.ix.Snapshot()
	rs := l.ix.ReplicaStatus()
	ready := rs.Role != "replica" || (rs.Connected && rs.Lag == 0)
	info := &shardrouter.ShardInfo{
		Name: l.name, Epoch: s.epoch, Scope: s.scope, SeqEpoch: s.seqEpoch,
		Ready: ready, Role: rs.Role, ReplicationLag: int64(rs.Lag),
	}
	if seg := l.ix.SegmentStats(); seg.Enabled {
		info.Segments = &shardrouter.SegmentInfo{
			Segments:          seg.Segments,
			SealedBytes:       seg.SealedBytes,
			DeltaEntries:      seg.DeltaEntries,
			Compactions:       seg.Compactions,
			CompactionBacklog: seg.CompactionBacklog,
			BytesPerLabel:     seg.BytesPerLabel,
			Mmapped:           seg.Mmapped,
		}
	}
	if ws := l.ix.WatchStats(); ws.Sessions > 0 || ws.Delivered > 0 || ws.Evictions > 0 {
		info.Watch = &shardrouter.WatchInfo{
			Sessions:     ws.Sessions,
			QueuedDeltas: ws.QueuedDeltas,
			Delivered:    ws.Delivered,
			Coalesced:    ws.Coalesced,
			Evictions:    ws.Evictions,
		}
	}
	return info, nil
}

func (l *localShard) Write(ctx context.Context, req *shardrouter.WriteRequest) (*shardrouter.WriteResult, error) {
	b := NewBatch()
	switch req.Op {
	case shardrouter.OpInsertDoc:
		if err := b.InsertXML(req.Name, []byte(req.XML)); err != nil {
			return nil, err
		}
	case shardrouter.OpDeleteDoc:
		b.DeleteDocumentByName(req.Name)
	case shardrouter.OpInsertLink, shardrouter.OpDeleteLink:
		fromDoc, fromLocal, fromAnchor, err := ParseElementSpec(req.From)
		if err != nil {
			return nil, err
		}
		if fromAnchor != "" {
			return nil, errors.New("hopi: link source must be doc or doc:idx, not an anchor")
		}
		toDoc, toLocal, toAnchor, err := ParseElementSpec(req.To)
		if err != nil {
			return nil, err
		}
		switch {
		case req.Op == shardrouter.OpInsertLink && toAnchor != "":
			b.InsertLinkByAnchor(fromDoc, fromLocal, toDoc, toAnchor)
		case req.Op == shardrouter.OpInsertLink:
			b.InsertLink(fromDoc, fromLocal, toDoc, toLocal)
		default:
			if toAnchor != "" {
				// DeleteLink is local-index addressed; resolve the anchor
				// against the current state first.
				id, err := l.ix.Snapshot().coll.ResolveElement(req.To)
				if err != nil {
					return nil, translateShardErr(err)
				}
				_, toLocal = l.ix.Snapshot().coll.c.LocalID(id)
			}
			b.DeleteLink(fromDoc, fromLocal, toDoc, toLocal)
		}
	default:
		return nil, fmt.Errorf("hopi: unknown shard write op %q", req.Op)
	}
	res, err := l.ix.Apply(ctx, b)
	if err != nil {
		return nil, translateShardErr(err)
	}
	out := &shardrouter.WriteResult{Epoch: l.ix.epoch.Load()}
	if len(res.Results) > 0 {
		out.Doc = int(res.Results[0].Doc)
		out.Unresolved = res.Results[0].Unresolved
	}
	return out, nil
}

// translateShardErr maps the index's maintenance sentinels onto the
// router tier's, so HTTP and in-process shards classify identically.
func translateShardErr(err error) error {
	switch {
	case errors.Is(err, ErrNotFound):
		return fmt.Errorf("%w: %w", shardrouter.ErrNotFound, err)
	case errors.Is(err, ErrExists):
		return fmt.Errorf("%w: %w", shardrouter.ErrExists, err)
	}
	return err
}
