// Package hopi implements the HOPI connection index for collections of
// linked XML documents (Schenkel, Theobald, Weikum: EDBT 2004 and ICDE
// 2005). HOPI materializes the transitive closure of a collection's
// element-level graph — parent/child edges plus intra- and
// inter-document links — as a compact 2-hop cover, enabling constant-
// lookup reachability tests, shortest-path ("distance") queries, and
// wildcard path expressions (//) that cross document boundaries.
//
// # Quick start
//
//	coll, _ := hopi.ParseCollection(files)
//	ix, _ := hopi.Build(coll, hopi.DefaultOptions())
//	a, _ := coll.DocByName("a.xml")
//	b, _ := coll.DocByName("b.xml")
//	connected := ix.Reaches(coll.ElemID(a, 0), coll.ElemID(b, 0))
//	authors, _ := ix.Query("//book//author")
//
// The index supports incremental maintenance (InsertDocument,
// InsertEdge, DeleteDocument, DeleteEdge, ModifyDocument) and can be
// persisted to a page-based store with Save/Open.
package hopi

import (
	"fmt"
	"os"

	"hopi/internal/core"
	"hopi/internal/partition"
	"hopi/internal/query"
	"hopi/internal/storage"
)

// Infinite is the distance reported for unreachable element pairs.
const Infinite = ^uint32(0)

// Partitioner selects how the document-level graph is divided before
// per-partition 2-hop covers are computed.
type Partitioner = core.Partitioner

// Partitioner values.
const (
	// Whole builds one centralized cover (best compression, slowest
	// build — the paper's infeasible-at-scale baseline).
	Whole = core.PartWhole
	// SingleDoc uses one partition per document.
	SingleDoc = core.PartSingle
	// NodeCapped caps partitions by element count (original HOPI).
	NodeCapped = core.PartNodeCapped
	// ClosureBudget grows partitions until their transitive closure
	// reaches the connection budget (ICDE 2005, §4.3 — recommended).
	ClosureBudget = core.PartClosureBudget
)

// JoinAlgorithm selects how partition covers are merged.
type JoinAlgorithm = core.JoinAlgorithm

// JoinAlgorithm values.
const (
	// NewJoin is the structurally recursive PSG-based join (ICDE 2005,
	// §4.1 — recommended; an order of magnitude faster than OldJoin).
	NewJoin = core.JoinNewHBar
	// NewJoinFullPSG computes a full 2-hop cover over the PSG instead
	// of the cheaper link-target cover (ablation variant).
	NewJoinFullPSG = core.JoinNewFullPSG
	// OldJoin integrates cross-partition links one at a time (EDBT
	// 2004, §3.3 — the baseline).
	OldJoin = core.JoinOldIncremental
)

// WeightScheme selects document-level edge weights for partitioning.
type WeightScheme = partition.WeightScheme

// WeightScheme values.
const (
	// WeightLinks counts links between documents.
	WeightLinks = partition.WeightLinks
	// WeightAtimesD uses the skeleton-graph estimate A·D (connections
	// routed over a link).
	WeightAtimesD = partition.WeightAtimesD
	// WeightAplusD uses A+D (nodes connected over a link).
	WeightAplusD = partition.WeightAplusD
)

// Options configures Build. The zero value is not valid; start from
// DefaultOptions.
type Options = core.Options

// DefaultOptions returns the paper's recommended configuration: the
// closure-budget partitioner with link-count weights and the new PSG
// join.
func DefaultOptions() Options {
	return Options{
		Partitioner:   ClosureBudget,
		ClosureBudget: 1_000_000,
		Join:          NewJoin,
		Weights:       WeightLinks,
	}
}

// Index is a built HOPI index over a collection.
type Index struct {
	coll *Collection
	ix   *core.Index
	eng  *query.Engine
}

// Build constructs a HOPI index for the collection.
func Build(coll *Collection, opts Options) (*Index, error) {
	ix, err := core.Build(coll.c, opts)
	if err != nil {
		return nil, err
	}
	return &Index{coll: coll, ix: ix}, nil
}

// Collection returns the indexed collection.
func (ix *Index) Collection() *Collection { return ix.coll }

// Stats returns build statistics (partitions, cover size, phase
// timings).
func (ix *Index) Stats() core.BuildStats { return ix.ix.Stats() }

// Size returns the number of stored label entries |L|.
func (ix *Index) Size() int { return ix.ix.Size() }

// Reaches reports whether element u reaches element v over the
// ancestor/descendant/link axes.
func (ix *Index) Reaches(u, v ElemID) bool { return ix.ix.Reaches(u, v) }

// Distance returns the shortest path length from u to v, or Infinite
// when v is unreachable. The index must be built with
// Options.WithDistance.
func (ix *Index) Distance(u, v ElemID) (uint32, error) { return ix.ix.Distance(u, v) }

// Descendants returns all elements reachable from u, including u.
func (ix *Index) Descendants(u ElemID) []ElemID { return ix.ix.Descendants(u) }

// Ancestors returns all elements that reach u, including u.
func (ix *Index) Ancestors(u ElemID) []ElemID { return ix.ix.Ancestors(u) }

// Validate checks the index against a freshly computed ground truth;
// O(n²), intended for tests and diagnostics.
func (ix *Index) Validate() error { return ix.ix.Validate() }

// Labels summarizes the current label distribution — watch it grow
// under maintenance churn and shrink again after Rebuild (§6).
func (ix *Index) Labels() core.LabelStats { return ix.ix.Labels() }

// Core unwraps the internal index for the experiment harness; not part
// of the stable API.
func (ix *Index) Core() *core.Index { return ix.ix }

// --- queries ----------------------------------------------------------

// QueryResult is one element matching a path expression.
type QueryResult struct {
	Element ElemID
	Doc     string // owning document name
	Tag     string
	Score   float64 // 0 for unranked queries
	Path    []ElemID
}

func (ix *Index) engine() *query.Engine {
	if ix.eng == nil {
		ix.eng = query.NewEngine(ix.coll.c, ix.ix)
	}
	return ix.eng
}

// Query evaluates a path expression such as "//book//author" or
// "/bib/book/title". The // axis follows parent-child edges and all
// links, crossing document boundaries.
func (ix *Index) Query(expr string) ([]QueryResult, error) {
	q, err := query.Parse(expr)
	if err != nil {
		return nil, err
	}
	var out []QueryResult
	for _, id := range ix.engine().Eval(q) {
		out = append(out, ix.result(id, 0, nil))
	}
	return out, nil
}

// QueryRanked evaluates a path expression and ranks matches by
// connection length (XXL-style: closer matches score higher). Requires
// a distance-aware index.
func (ix *Index) QueryRanked(expr string) ([]QueryResult, error) {
	q, err := query.Parse(expr)
	if err != nil {
		return nil, err
	}
	matches, err := ix.engine().EvalRanked(q)
	if err != nil {
		return nil, err
	}
	var out []QueryResult
	for _, m := range matches {
		out = append(out, ix.result(m.Element, m.Score, m.Path))
	}
	return out, nil
}

func (ix *Index) result(id ElemID, score float64, path []ElemID) QueryResult {
	return QueryResult{
		Element: id,
		Doc:     ix.coll.DocName(ix.coll.DocOf(id)),
		Tag:     ix.coll.Tag(id),
		Score:   score,
		Path:    path,
	}
}

// --- maintenance ------------------------------------------------------

// InsertDocument adds a new document to the collection and index.
// Attach its links afterwards with InsertEdge.
func (ix *Index) InsertDocument(d *Document) (DocID, error) {
	idx, err := ix.ix.InsertDocument(d.d)
	ix.eng = nil
	return DocID(idx), err
}

// InsertEdge adds a link between two existing elements.
func (ix *Index) InsertEdge(from, to ElemID) error {
	ix.eng = nil
	return ix.ix.InsertEdge(from, to)
}

// DeleteDocument removes a document; it reports whether the Theorem 2
// fast path (separating document) applied.
func (ix *Index) DeleteDocument(doc DocID) (bool, error) {
	ix.eng = nil
	return ix.ix.DeleteDocument(int(doc))
}

// DeleteEdge removes a link.
func (ix *Index) DeleteEdge(from, to ElemID) error {
	ix.eng = nil
	return ix.ix.DeleteEdge(from, to)
}

// ModifyDocument replaces a document with a new version, re-attaching
// inter-document links; it returns the new document's ID.
func (ix *Index) ModifyDocument(doc DocID, newDoc *Document) (DocID, error) {
	ix.eng = nil
	idx, err := ix.ix.ModifyDocument(int(doc), newDoc.d)
	return DocID(idx), err
}

// Separates reports whether the document separates the document-level
// graph — i.e. whether deleting it takes the fast path.
func (ix *Index) Separates(doc DocID) bool { return ix.ix.Separates(int(doc)) }

// Rebuild recomputes the index from scratch with its original options,
// restoring space efficiency after heavy maintenance.
func (ix *Index) Rebuild() error {
	ix.eng = nil
	return ix.ix.Rebuild()
}

// --- persistence ------------------------------------------------------

// Save persists the index to path (a page-based cover store with
// forward and backward indexes, as in the paper's database deployment)
// and the collection to path+".coll".
func (ix *Index) Save(path string) error {
	fp, err := storage.CreateFilePager(path)
	if err != nil {
		return err
	}
	st, err := storage.CreateCoverStore(fp, 1024, ix.coll.c.NumAllocatedIDs(), ix.ix.Cover().WithDist)
	if err != nil {
		fp.Close()
		return err
	}
	if err := st.FromCover(ix.ix.Cover()); err != nil {
		st.Close()
		return err
	}
	if err := st.Close(); err != nil {
		return err
	}
	f, err := os.Create(path + ".coll")
	if err != nil {
		return err
	}
	defer f.Close()
	return ix.coll.Encode(f)
}

// Open loads an index saved with Save. The returned index answers
// queries from the in-memory cover; the on-disk store remains the
// durable copy.
func Open(path string) (*Index, error) {
	f, err := os.Open(path + ".coll")
	if err != nil {
		return nil, fmt.Errorf("hopi: open collection: %w", err)
	}
	coll, err := DecodeCollection(f)
	f.Close()
	if err != nil {
		return nil, err
	}
	fp, err := storage.OpenFilePager(path)
	if err != nil {
		return nil, err
	}
	st, err := storage.OpenCoverStore(fp, 1024)
	if err != nil {
		fp.Close()
		return nil, err
	}
	cover, err := st.ToCover()
	st.Close()
	if err != nil {
		return nil, err
	}
	cix := core.NewFromCover(coll.c, cover)
	return &Index{coll: coll, ix: cix}, nil
}

// OpenStore opens the on-disk cover store directly for query-only
// access without materializing the cover in memory — the §3.4
// deployment mode where every lookup is an index scan.
func OpenStore(path string) (*storage.CoverStore, error) {
	fp, err := storage.OpenFilePager(path)
	if err != nil {
		return nil, err
	}
	return storage.OpenCoverStore(fp, 1024)
}
