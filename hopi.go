// Package hopi implements the HOPI connection index for collections of
// linked XML documents (Schenkel, Theobald, Weikum: EDBT 2004 and ICDE
// 2005). HOPI materializes the transitive closure of a collection's
// element-level graph — parent/child edges plus intra- and
// inter-document links — as a compact 2-hop cover, enabling constant-
// lookup reachability tests, shortest-path ("distance") queries, and
// wildcard path expressions (//) that cross document boundaries.
//
// # Quick start
//
//	coll, _ := hopi.ParseCollection(files)
//	ix, _ := hopi.Build(coll, hopi.DefaultOptions())
//	a, _ := coll.DocByName("a.xml")
//	b, _ := coll.DocByName("b.xml")
//	connected := ix.Reaches(coll.ElemID(a, 0), coll.ElemID(b, 0))
//	authors, _ := ix.Query("//book//author")
//
// # Snapshots and batches
//
// An Index separates its read path from its write path so it can serve
// queries while being maintained — the online scenario of the paper's
// §6 experiments:
//
//   - Index.Snapshot returns an immutable *Snapshot carrying its own
//     query engine. All query methods (Reaches, Distance, Descendants,
//     Ancestors, Query, QueryRanked, QueryCtx) live on the snapshot;
//     the same-named methods on Index are thin wrappers that delegate
//     to the current snapshot. Snapshots are safe for unlimited
//     concurrent use and are never invalidated mid-query: a reader
//     keeps its view for as long as it likes while writers publish
//     newer states behind it.
//
//   - Maintenance goes through a Batch (InsertDocument, InsertXML,
//     InsertEdge, DeleteEdge, DeleteDocument, ModifyDocument, Rebuild)
//     applied with Index.Apply under an internal write lock. The
//     snapshot and its engine are rebuilt once per batch, not once per
//     call. The per-operation maintenance methods on Index remain as
//     single-op batches for compatibility.
//
// # Prepared queries, cursors, EXPLAIN
//
// Path expressions compile once with Prepare and execute as streaming
// cursors: Snapshot.Run (or Index.Run) returns a *Cursor whose final
// evaluation step stops early under QueryLimit (limit pushdown) and
// whose Token/QueryResume pair paginates a result set across requests.
// Tokens embed the snapshot epoch; maintenance retires them
// (ErrStaleToken). Snapshot.Explain reports the per-step execution
// plan. QueryCtx(ctx, expr, QueryLimit(10), QueryRanked()) remains as
// a thin wrapper over Prepare+Run — it polls ctx inside the evaluation
// loops and its limited result is exactly a prefix of the unlimited
// one. cmd/hopiserve exposes the whole API as an HTTP JSON service
// built on snapshots, with an LRU prepared-statement cache, paginated
// and NDJSON-streaming query endpoints, and GET /explain.
//
// The index can be persisted to a page-based store with Save/Open —
// or, with Create / Open(path, Durable()), kept attached to the store
// as a live, crash-recoverable backend: Apply write-ahead logs every
// maintenance batch before publishing it and updates the stored cover
// incrementally, Checkpoint folds the log into the store, and a
// restart replays any log tail a crash left behind.
package hopi

import (
	"context"
	"fmt"
	"math/rand/v2"
	"os"
	"sync"
	"sync/atomic"

	"hopi/internal/core"
	"hopi/internal/partition"
	"hopi/internal/replication"
	"hopi/internal/segment"
	"hopi/internal/storage"
)

// Infinite is the distance reported for unreachable element pairs.
const Infinite = ^uint32(0)

// Partitioner selects how the document-level graph is divided before
// per-partition 2-hop covers are computed.
type Partitioner = core.Partitioner

// Partitioner values.
const (
	// Whole builds one centralized cover (best compression, slowest
	// build — the paper's infeasible-at-scale baseline).
	Whole = core.PartWhole
	// SingleDoc uses one partition per document.
	SingleDoc = core.PartSingle
	// NodeCapped caps partitions by element count (original HOPI).
	NodeCapped = core.PartNodeCapped
	// ClosureBudget grows partitions until their transitive closure
	// reaches the connection budget (ICDE 2005, §4.3 — recommended).
	ClosureBudget = core.PartClosureBudget
)

// JoinAlgorithm selects how partition covers are merged.
type JoinAlgorithm = core.JoinAlgorithm

// JoinAlgorithm values.
const (
	// NewJoin is the structurally recursive PSG-based join (ICDE 2005,
	// §4.1 — recommended; an order of magnitude faster than OldJoin).
	NewJoin = core.JoinNewHBar
	// NewJoinFullPSG computes a full 2-hop cover over the PSG instead
	// of the cheaper link-target cover (ablation variant).
	NewJoinFullPSG = core.JoinNewFullPSG
	// OldJoin integrates cross-partition links one at a time (EDBT
	// 2004, §3.3 — the baseline).
	OldJoin = core.JoinOldIncremental
)

// WeightScheme selects document-level edge weights for partitioning.
type WeightScheme = partition.WeightScheme

// WeightScheme values.
const (
	// WeightLinks counts links between documents.
	WeightLinks = partition.WeightLinks
	// WeightAtimesD uses the skeleton-graph estimate A·D (connections
	// routed over a link).
	WeightAtimesD = partition.WeightAtimesD
	// WeightAplusD uses A+D (nodes connected over a link).
	WeightAplusD = partition.WeightAplusD
)

// Options configures Build. The zero value is not valid; start from
// DefaultOptions.
type Options = core.Options

// DefaultOptions returns the paper's recommended configuration: the
// closure-budget partitioner with link-count weights and the new PSG
// join.
func DefaultOptions() Options {
	return Options{
		Partitioner:   ClosureBudget,
		ClosureBudget: 1_000_000,
		Join:          NewJoin,
		Weights:       WeightLinks,
	}
}

// Index is a built HOPI index over a collection.
//
// The Index owns the live, mutable state; all mutation is serialized
// through Apply (the per-operation maintenance methods are single-op
// batches). Reads go through immutable snapshots — see Snapshot. Index
// methods that inspect the live state directly (Stats, Size, Labels,
// Validate, Separates, Save) take a read lock and are safe to call
// concurrently with Apply; the handle returned by Collection, however,
// aliases live state and must not be used concurrently with writes —
// use Snapshot().Collection() for that.
type Index struct {
	mu     sync.RWMutex // Apply takes the write side; live-state readers the read side
	snapMu sync.Mutex   // single-flights snapshot construction (never held with mu's write side)
	coll   *Collection
	ix     *core.Index
	cur    atomic.Pointer[Snapshot] // latest published snapshot, nil after a batch
	epoch  atomic.Uint64            // opaque version stamp; see newEpoch
	dur    *durableState            // attached store backend, nil for in-memory indexes
	// seqEpoch marks the epoch as the durable WAL batch sequence
	// instead of a random per-instance counter; written under mu's
	// write side, read under either side. See Snapshot.Epoch.
	seqEpoch bool
	// scope is the replication-scope identity embedded in resume
	// tokens: random per instance for in-memory indexes, minted at
	// store creation and persisted for durable ones, adopted from the
	// primary's bootstrap image on followers. A token is only ever
	// honored by indexes of the same scope, so sequence-valued epochs
	// cannot collide across unrelated stores. Written under mu's write
	// side (or before the index is shared), read under either side.
	scope uint64
	// readOnly marks a replication follower: Apply refuses with
	// ErrReadOnlyReplica, all state changes arrive over the stream.
	// Immutable after construction.
	readOnly bool
	pub      *replication.Publisher // attached log-shipping publisher, nil otherwise
	fol      *replication.Follower  // replication source for followers, nil otherwise
	// watch is the live-query notifier, created lazily by the first
	// Watch call and torn down by Close; see watch.go.
	watch atomic.Pointer[watcherState]
	// folClean removes a follower's adopted segment-store directory;
	// set by bootstrap, run by Close after the stream stops.
	folClean func()
	// met is the lazily created metric hub (see metrics.go); metMu
	// single-flights its construction.
	met   atomic.Pointer[indexMetrics]
	metMu sync.Mutex
}

// newEpoch seeds an in-memory index's version stamp. The epoch is
// bumped on every maintenance batch and embedded in resume tokens;
// seeding it randomly per index instance (rather than starting at
// zero) makes a token from a different index or an earlier process
// fail ErrStaleToken instead of silently resuming over different data
// — the counter would otherwise restart at zero and collide. Indexes
// with an attached durable store (and replication followers) use the
// WAL batch sequence instead, which makes tokens portable across
// replicas and restarts of the same store; see Snapshot.Epoch.
func newEpoch() uint64 { return rand.Uint64() }

// Build constructs a HOPI index for the collection. The collection is
// adopted as the index's live state: mutate it only through the
// index's maintenance API afterwards.
func Build(coll *Collection, opts Options) (*Index, error) {
	ix, err := core.Build(coll.c, opts)
	if err != nil {
		return nil, err
	}
	h := &Index{coll: coll, ix: ix, scope: newEpoch()}
	h.epoch.Store(newEpoch())
	return h, nil
}

// Snapshot returns the current immutable snapshot, cloning the live
// state on first use after a maintenance batch and reusing the cached
// snapshot until the next one. The returned snapshot remains valid (and
// unchanged) forever; queries against it never block writers.
func (ix *Index) Snapshot() *Snapshot {
	if s := ix.cur.Load(); s != nil {
		return s
	}
	// snapMu single-flights construction so concurrent first-readers
	// don't clone redundantly; the clone itself happens under the read
	// lock only, so it never blocks other live-state readers. The
	// publish happens while still holding the read lock: Apply cannot
	// run (and invalidate) between the clone and the store, so a stale
	// snapshot can never be cached past a batch.
	ix.snapMu.Lock()
	defer ix.snapMu.Unlock()
	if s := ix.cur.Load(); s != nil {
		return s
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	s := newSnapshot(ix.ix, ix.epoch.Load(), ix.seqEpoch, ix.scope)
	s.met = ix.metrics()
	ix.cur.Store(s)
	return s
}

// Collection returns the live collection. The handle aliases the
// index's mutable state: safe with the single-threaded call pattern of
// the original API, but under concurrent maintenance prefer
// Snapshot().Collection().
func (ix *Index) Collection() *Collection { return ix.coll }

// Stats returns build statistics (partitions, cover size, phase
// timings).
func (ix *Index) Stats() core.BuildStats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.ix.Stats()
}

// Size returns the number of stored label entries |L|.
func (ix *Index) Size() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.ix.Size()
}

// Reaches reports whether element u reaches element v over the
// ancestor/descendant/link axes. It reads the live state under the
// read lock — a point lookup, no snapshot clone; pin a Snapshot when
// several lookups must observe the same state.
func (ix *Index) Reaches(u, v ElemID) bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.ix.Reaches(u, v)
}

// Distance returns the shortest path length from u to v, or Infinite
// when v is unreachable. The index must be built with
// Options.WithDistance. Like Reaches it reads the live state.
func (ix *Index) Distance(u, v ElemID) (uint32, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.ix.Distance(u, v)
}

// Descendants returns all elements reachable from u, including u,
// reading the live state.
func (ix *Index) Descendants(u ElemID) []ElemID {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.ix.Descendants(u)
}

// Ancestors returns all elements that reach u, including u, reading
// the live state.
func (ix *Index) Ancestors(u ElemID) []ElemID {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.ix.Ancestors(u)
}

// Validate checks the index against a freshly computed ground truth;
// O(n²), intended for tests and diagnostics.
func (ix *Index) Validate() error {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.ix.Validate()
}

// Labels summarizes the current label distribution — watch it grow
// under maintenance churn and shrink again after Rebuild (§6).
func (ix *Index) Labels() core.LabelStats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.ix.Labels()
}

// Core unwraps the internal index for the experiment harness; not part
// of the stable API and not synchronized against Apply.
func (ix *Index) Core() *core.Index { return ix.ix }

// --- queries ----------------------------------------------------------

// QueryResult is one element matching a path expression.
type QueryResult struct {
	Element ElemID
	Doc     string // owning document name
	Tag     string
	Score   float64 // 0 for unranked queries
	Path    []ElemID
}

// Query evaluates a path expression such as "//book//author" or
// "/bib/book/title" against the current snapshot. The // axis follows
// parent-child edges and all links, crossing document boundaries.
func (ix *Index) Query(expr string) ([]QueryResult, error) {
	return ix.Snapshot().Query(expr)
}

// QueryCtx evaluates a path expression against the current snapshot
// with cancellation and options; see Snapshot.QueryCtx.
func (ix *Index) QueryCtx(ctx context.Context, expr string, opts ...QueryOption) ([]QueryResult, error) {
	return ix.Snapshot().QueryCtx(ctx, expr, opts...)
}

// QueryRanked evaluates a path expression and ranks matches by
// connection length (XXL-style: closer matches score higher). Requires
// a distance-aware index.
func (ix *Index) QueryRanked(expr string) ([]QueryResult, error) {
	return ix.Snapshot().QueryRanked(expr)
}

// --- maintenance ------------------------------------------------------
//
// The per-operation methods below are compatibility wrappers: each one
// applies a single-op Batch. Under write-heavy load, prefer building a
// Batch and calling Apply once — the snapshot is rebuilt per batch.

// InsertDocument adds a new document to the collection and index.
// Attach its links afterwards with InsertEdge.
func (ix *Index) InsertDocument(d *Document) (DocID, error) {
	b := NewBatch()
	b.InsertDocument(d)
	res, err := ix.Apply(context.Background(), b)
	if err != nil {
		return 0, err
	}
	return res.Results[0].Doc, nil
}

// InsertEdge adds a link between two existing elements.
func (ix *Index) InsertEdge(from, to ElemID) error {
	b := NewBatch()
	b.InsertEdge(from, to)
	_, err := ix.Apply(context.Background(), b)
	return err
}

// DeleteDocument removes a document; it reports whether the Theorem 2
// fast path (separating document) applied.
func (ix *Index) DeleteDocument(doc DocID) (bool, error) {
	b := NewBatch()
	b.DeleteDocument(doc)
	res, err := ix.Apply(context.Background(), b)
	if err != nil {
		return false, err
	}
	return res.Results[0].FastPath, nil
}

// DeleteEdge removes a link.
func (ix *Index) DeleteEdge(from, to ElemID) error {
	b := NewBatch()
	b.DeleteEdge(from, to)
	_, err := ix.Apply(context.Background(), b)
	return err
}

// ModifyDocument replaces a document with a new version, re-attaching
// inter-document links; it returns the new document's ID.
func (ix *Index) ModifyDocument(doc DocID, newDoc *Document) (DocID, error) {
	b := NewBatch()
	b.ModifyDocument(doc, newDoc)
	res, err := ix.Apply(context.Background(), b)
	if err != nil {
		return 0, err
	}
	return res.Results[0].Doc, nil
}

// Separates reports whether the document separates the document-level
// graph — i.e. whether deleting it takes the fast path.
func (ix *Index) Separates(doc DocID) bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.ix.Separates(int(doc))
}

// Rebuild recomputes the index from scratch with its original options,
// restoring space efficiency after heavy maintenance.
func (ix *Index) Rebuild() error {
	b := NewBatch()
	b.Rebuild()
	_, err := ix.Apply(context.Background(), b)
	return err
}

// --- persistence ------------------------------------------------------

// Save persists the index to path (a page-based cover store with
// forward and backward indexes, as in the paper's database deployment)
// and the collection to path+".coll". It takes the read lock, so it is
// safe to call concurrently with Apply.
//
// On a durable index saving to its attached path, Save is a
// Checkpoint — an incremental flush of the pages dirtied since the
// last one, not a full rewrite. Saving to any other path writes an
// independent full copy (a cold backup).
func (ix *Index) Save(path string) error {
	if ix.dur != nil && path == ix.dur.path {
		return ix.Checkpoint()
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	fp, err := storage.CreateFilePager(path)
	if err != nil {
		return err
	}
	st, err := storage.CreateCoverStore(fp, 1024, ix.coll.c.NumAllocatedIDs(), ix.ix.Cover().WithDist)
	if err != nil {
		fp.Close()
		return err
	}
	if err := st.FromCover(ix.ix.Cover()); err != nil {
		st.Close()
		return err
	}
	if err := st.Close(); err != nil {
		return err
	}
	f, err := os.Create(path + ".coll")
	if err != nil {
		return err
	}
	defer f.Close()
	return ix.coll.Encode(f)
}

// Open loads an index saved with Save or Create. By default the
// returned index answers queries from the in-memory cover and leaves
// the files untouched; with the Durable option the store stays
// attached as the live backend — maintenance batches are write-ahead
// logged and applied to the store in place, and a WAL tail left by a
// crash is replayed first (see Create, Checkpoint, Close).
func Open(path string, opts ...OpenOption) (*Index, error) {
	var cfg openConfig
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.durable {
		return openDurable(path, &cfg)
	}
	f, err := os.Open(path + ".coll")
	if err != nil {
		return nil, fmt.Errorf("hopi: open collection: %w", err)
	}
	coll, err := DecodeCollection(f)
	f.Close()
	if err != nil {
		return nil, err
	}
	if segment.IsStore(path + segsSuffix) {
		// segment-backed store: no B-tree file exists at path; load the
		// sealed labels into memory and leave the files untouched
		return openFromSegments(path, coll)
	}
	fp, err := storage.OpenFilePager(path)
	if err != nil {
		return nil, err
	}
	st, err := storage.OpenCoverStore(fp, 1024)
	if err != nil {
		fp.Close()
		return nil, err
	}
	cover, err := st.ToCover()
	st.Close()
	if err != nil {
		return nil, err
	}
	cix := core.NewFromCover(coll.c, cover)
	h := &Index{coll: coll, ix: cix, scope: newEpoch()}
	h.epoch.Store(newEpoch())
	return h, nil
}

// OpenStore opens the on-disk cover store directly for query-only
// access without materializing the cover in memory — the §3.4
// deployment mode where every lookup is an index scan.
func OpenStore(path string) (*storage.CoverStore, error) {
	fp, err := storage.OpenFilePager(path)
	if err != nil {
		return nil, err
	}
	st, err := storage.OpenCoverStore(fp, 1024)
	if err != nil {
		fp.Close()
		return nil, err
	}
	return st, nil
}
