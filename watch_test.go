package hopi

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// --- helpers ----------------------------------------------------------

// watchConsumer cumulatively applies delivered watch events to a local
// result-set replica, exactly as a client would.
type watchConsumer struct {
	t      *testing.T
	w      *Watch
	state  map[ElemID]float64
	init   bool
	resync bool
	epoch  uint64
	events int
}

func subscribe(t *testing.T, ix *Index, expr string, opts ...WatchOption) *watchConsumer {
	t.Helper()
	pq, err := Prepare(expr)
	if err != nil {
		t.Fatal(err)
	}
	w, err := ix.Watch(context.Background(), pq, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	return &watchConsumer{t: t, w: w, state: map[ElemID]float64{}}
}

func (c *watchConsumer) apply(ev *WatchEvent) {
	c.events++
	c.epoch = ev.Epoch
	if ev.Resync {
		c.resync = true
		return
	}
	if ev.Init {
		c.init = true
		c.state = map[ElemID]float64{}
	}
	for _, e := range ev.Remove {
		delete(c.state, e)
	}
	for _, r := range ev.Add {
		c.state[r.Element] = r.Score
	}
}

// pump drains whatever events arrive within d.
func (c *watchConsumer) pump(d time.Duration) {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	for {
		ev, err := c.w.Next(ctx)
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, ErrWatchClosed) {
				return
			}
			c.t.Fatalf("watch Next: %v", err)
		}
		c.apply(ev)
	}
}

// oracleState re-runs expr on the index's current snapshot.
func oracleState(t *testing.T, ix *Index, expr string, ranked bool) map[ElemID]float64 {
	t.Helper()
	want := map[ElemID]float64{}
	if ranked {
		res, err := ix.QueryRanked(expr)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res {
			want[r.Element] = r.Score
		}
	} else {
		res, err := ix.Query(expr)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res {
			want[r.Element] = 0
		}
	}
	return want
}

func stateEqual(a, b map[ElemID]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// waitMatch pumps the consumer until its replica equals want (the
// notifier runs asynchronously) or the deadline expires.
func waitMatch(t *testing.T, c *watchConsumer, want map[ElemID]float64, label string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		c.pump(50 * time.Millisecond)
		if stateEqual(c.state, want) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: watch replica diverged after drain:\n got %v\nwant %v (init=%v resync=%v events=%d epoch=%d)",
				label, c.state, want, c.init, c.resync, c.events, c.epoch)
		}
	}
}

// modifyBatch replaces a live document (by name) with a structurally
// similar new version carrying one extra author, exercising the
// remove+add ChangeLog path.
func modifyBatch(t *testing.T, ix *Index, name string) *Batch {
	t.Helper()
	id, ok := ix.Collection().DocByName(name)
	if !ok {
		t.Fatalf("modify: %s not found", name)
	}
	d := NewDocument(name, "article")
	d.AddElement(d.Root(), "title")
	d.AddElement(d.Root(), "author")
	d.AddElement(d.Root(), "cite")
	d.AddElement(d.Root(), "author")
	b := NewBatch()
	b.ModifyDocument(id, d)
	return b
}

// churn applies a randomized maintenance script one batch at a time,
// interleaving ModifyDocument batches on live scripted docs.
func churn(t *testing.T, ix *Index, rng *rand.Rand, n int, withRebuild bool) {
	t.Helper()
	_, base := baseCollection(t)
	ops := randomScript(rng, base, n, withRebuild)
	var mine []string
	for i, op := range ops {
		if _, err := ix.Apply(context.Background(), buildScriptBatch(op)); err != nil {
			t.Fatalf("script op %d (%+v): %v", i, op, err)
		}
		switch op.kind {
		case 0:
			mine = append(mine, op.name)
		case 1:
			for j, nm := range mine {
				if nm == op.name {
					mine = append(mine[:j], mine[j+1:]...)
					break
				}
			}
		}
		if len(mine) > 0 && i%7 == 3 {
			name := mine[rng.Intn(len(mine))]
			if _, err := ix.Apply(context.Background(), modifyBatch(t, ix, name)); err != nil {
				t.Fatalf("modify %s: %v", name, err)
			}
		}
	}
}

// --- oracle equivalence ----------------------------------------------

// TestWatchOracleEquivalence is the acceptance test for live queries:
// under randomized maintenance (inserts, deletes, ModifyDocument,
// rebuilds, link churn including cycles), cumulatively applying the
// delivered deltas to the initial result set must be element-for-
// element identical to re-running the prepared query on the final
// snapshot — for 1-step, 2-step (incremental path), deep (fallback
// path), and ranked subscriptions.
func TestWatchOracleEquivalence(t *testing.T) {
	coll, _ := baseCollection(t)
	opts := DefaultOptions()
	opts.WithDistance = true
	opts.Seed = 1
	ix, err := Build(coll, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })

	subs := []struct {
		expr   string
		ranked bool
	}{
		{"//author", false},          // 1-step
		{"//article//author", false}, // 2-step, incremental path
		{"//bib//author", false},     // 2-step over base + script links
		{"/bib/book//title", false},  // 3-step, always fallback
		{"//bib//author", true},      // ranked, always fallback
	}
	consumers := make([]*watchConsumer, len(subs))
	for i, s := range subs {
		var wo []WatchOption
		if s.ranked {
			wo = append(wo, WatchRanked())
		}
		consumers[i] = subscribe(t, ix, s.expr, wo...)
	}

	churn(t, ix, rand.New(rand.NewSource(7)), 120, true)

	for i, s := range subs {
		want := oracleState(t, ix, s.expr, s.ranked)
		waitMatch(t, consumers[i], want, fmt.Sprintf("%s ranked=%v", s.expr, s.ranked))
		if !consumers[i].init {
			t.Errorf("%s: no init event delivered", s.expr)
		}
	}
	st := ix.WatchStats()
	if st.Delivered == 0 {
		t.Error("no events delivered")
	}
	if st.IncrementalDeltas == 0 {
		t.Error("incremental path never taken under churn")
	}
}

// TestWatchFollowerOracleEquivalence runs the same oracle check on a
// replication follower: maintenance lands on the primary, streams over
// the wire, and follower-side watches must converge to the follower's
// own final query results (one notifier round per buffered burst, via
// Quiesce).
func TestWatchFollowerOracleEquivalence(t *testing.T) {
	dir := t.TempDir()
	ix, _ := createPrimary(t, dir+"/primary.hopi")
	t.Cleanup(func() { ix.Close() })
	p := startReplPrimary(t, ix, "", PublishHeartbeat(20*time.Millisecond))
	t.Cleanup(p.stop)
	fol := followFast(t, p.streamURL())

	// subscribe on both sides before the churn
	folC := subscribe(t, fol, "//article//author")
	priC := subscribe(t, ix, "//article//author")
	folDeep := subscribe(t, fol, "//bib//author")

	churn(t, ix, rand.New(rand.NewSource(11)), 80, true)
	waitCaughtUp(t, fol, ix)

	want := oracleState(t, ix, "//article//author", false)
	waitMatch(t, priC, want, "primary //article//author")
	folWant := oracleState(t, fol, "//article//author", false)
	if !stateEqual(want, folWant) {
		t.Fatalf("follower query diverged from primary: %v vs %v", folWant, want)
	}
	waitMatch(t, folC, folWant, "follower //article//author")
	waitMatch(t, folDeep, oracleState(t, fol, "//bib//author", false), "follower //bib//author")

	if st := fol.WatchStats(); st.Delivered == 0 {
		t.Error("follower delivered no events")
	}
}

// --- behaviors --------------------------------------------------------

// TestWatchIncrementalPath asserts the delta-seeded evaluator (not the
// full re-run) serves steady-state notifications for a 2-step query
// with distinct tags.
func TestWatchIncrementalPath(t *testing.T) {
	ix := demoIndex(t, false)
	t.Cleanup(func() { ix.Close() })
	c := subscribe(t, ix, "//article//author")
	c.pump(200 * time.Millisecond) // init

	for i := 0; i < 4; i++ {
		op := scriptOp{kind: 0, name: fmt.Sprintf("inc%02d.xml", i)} // no link: pure insert
		if _, err := ix.Apply(context.Background(), buildScriptBatch(op)); err != nil {
			t.Fatal(err)
		}
		want := oracleState(t, ix, "//article//author", false)
		waitMatch(t, c, want, "incremental insert")
	}
	st := ix.WatchStats()
	if st.IncrementalDeltas == 0 {
		t.Fatalf("expected incremental rounds, stats %+v", st)
	}
}

// TestWatchSlowConsumerEviction drives churn into an unread 1-element
// queue: the session must deliver a terminal Resync event, after which
// Next fails ErrWatchClosed, and re-subscribing with the current epoch
// resumes without an Init event.
func TestWatchSlowConsumerEviction(t *testing.T) {
	ix := demoIndex(t, false)
	t.Cleanup(func() { ix.Close() })
	pq, err := Prepare("//author")
	if err != nil {
		t.Fatal(err)
	}
	w, err := ix.Watch(context.Background(), pq, WatchMaxPending(1))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	// do not consume while churning: pending adds exceed the bound
	for i := 0; i < 6; i++ {
		op := scriptOp{kind: 0, name: fmt.Sprintf("ev%02d.xml", i)}
		if _, err := ix.Apply(context.Background(), buildScriptBatch(op)); err != nil {
			t.Fatal(err)
		}
	}
	var resync *WatchEvent
	deadline := time.Now().Add(10 * time.Second)
	for resync == nil {
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		ev, err := w.Next(ctx)
		cancel()
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				if time.Now().After(deadline) {
					t.Fatal("no resync delivered")
				}
				continue
			}
			t.Fatal(err)
		}
		if ev.Resync {
			resync = ev
		}
	}
	if _, err := w.Next(context.Background()); !errors.Is(err, ErrWatchClosed) {
		t.Fatalf("post-resync Next: %v, want ErrWatchClosed", err)
	}
	if ix.WatchStats().Evictions == 0 {
		t.Error("eviction not counted")
	}

	// re-subscribe from the resync epoch: if nothing committed since,
	// the init event is skipped
	if resync.Epoch == ix.Epoch() {
		w2, err := ix.Watch(context.Background(), pq, WatchResume(resync.Epoch))
		if err != nil {
			t.Fatal(err)
		}
		defer w2.Close()
		if !w2.Resumed() {
			t.Error("resume with current epoch should skip init")
		}
	}
}

// TestWatchResumeStaleEpoch: resuming from an epoch the index has moved
// past must deliver a fresh Init event instead.
func TestWatchResumeStaleEpoch(t *testing.T) {
	ix := demoIndex(t, false)
	t.Cleanup(func() { ix.Close() })
	old := ix.Epoch()
	op := scriptOp{kind: 0, name: "r0.xml"}
	if _, err := ix.Apply(context.Background(), buildScriptBatch(op)); err != nil {
		t.Fatal(err)
	}
	c := subscribe(t, ix, "//author", WatchResume(old))
	if c.w.Resumed() {
		t.Fatal("stale resume epoch must not skip init")
	}
	waitMatch(t, c, oracleState(t, ix, "//author", false), "stale resume")
	if !c.init {
		t.Error("expected init event")
	}
}

// TestWatchCloseUnblocksNext: closing the index tears down sessions and
// unblocks waiting consumers with ErrWatchClosed.
func TestWatchCloseUnblocksNext(t *testing.T) {
	ix := demoIndex(t, false)
	pq, err := Prepare("//author")
	if err != nil {
		t.Fatal(err)
	}
	w, err := ix.Watch(context.Background(), pq)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Next(context.Background()); err != nil {
		t.Fatal(err) // init event
	}
	errc := make(chan error, 1)
	go func() {
		_, err := w.Next(context.Background())
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if !errors.Is(err, ErrWatchClosed) {
			t.Fatalf("Next after Close: %v, want ErrWatchClosed", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Next did not unblock on Close")
	}
}
