package hopi

import (
	"fmt"
	"os"
	"time"

	"hopi/internal/core"
	"hopi/internal/segment"
	"hopi/internal/storage"
	"hopi/internal/twohop"
	"hopi/internal/xmlmodel"
)

// Segment-backed durability
//
// With the Segments option the durable backend is an LSM-style store
// at path+".segs": a stack of immutable, sorted, compressed segment
// files (varint-delta blocks with per-block CRCs, read through mmap)
// plus the cover's in-memory delta layer. Apply commits batches to the
// WAL exactly as in B-tree mode, but nothing is applied to any on-disk
// structure per batch — the in-memory cover is the authority.
// Checkpoints seal the delta into one new segment in a single
// streaming pass and truncate the WAL; there is no buffer pool, no
// dirty page tracking, and no double-write journal, because sealed
// files are never modified. A background compactor folds the stack
// back to one segment when it grows past SegmentMaxStack, dropping
// tombstones. The manifest records the WAL sequence the sealed state
// reflects, so replay after a crash (or a checkpoint that died between
// sealing and truncating the log) skips batches the seal already
// covers — seal-checkpoints are idempotent.

const (
	segsSuffix = ".segs"

	// defaultSegmentThreshold is the delta size (adds + tombstones) at
	// which Apply seals automatically when SegmentThreshold is not set.
	defaultSegmentThreshold = 1 << 16
)

// attachNewSegments creates the segment store for a freshly built
// index: the complete label set is sealed as the first segment and
// adopted as the cover's base (the flat slices are dropped).
func (ix *Index) attachNewSegments(path string, cfg *openConfig) error {
	cov := ix.ix.Cover()
	store, err := segment.CreateStore(path+segsSuffix, cov.WithDist, segment.Options{MaxStack: cfg.segMaxStack})
	if err != nil {
		return err
	}
	st, err := store.Seal(0, cov.N(), int64(cov.Size()), cov.FullRecords())
	if err != nil {
		return err
	}
	ix.ix.AdoptSegmentBase(twohop.NewBase(st), cov.N(), cov.Size())
	wal, _, err := storage.OpenWAL(path + walSuffix)
	if err != nil {
		return err
	}
	// a stale log from an earlier store at the same path must not be
	// replayed into this one
	if err := wal.Reset(); err != nil {
		wal.Close()
		return err
	}
	if err := writeCollFile(path+collSuffix, ix.coll.c, 0, ix.scope); err != nil {
		wal.Close()
		return err
	}
	d := &durableState{path: path, wal: wal, nextSeq: 1, segs: store, segThreshold: cfg.threshold()}
	ix.wireWAL(wal)
	d.maint = ix.metrics().maintSeconds
	d.startCompactor()
	ix.dur = d
	ix.seqEpoch = true
	ix.epoch.Store(0)
	return nil
}

// openDurableSegments opens a segment-backed durable index: adopt the
// sealed stack, replay the WAL tail past the manifest's sequence, and
// fold the tail back into a segment so the next crash recovers fast.
func openDurableSegments(path string, cfg *openConfig) (*Index, error) {
	store, err := segment.OpenStore(path+segsSuffix, segment.Options{MaxStack: cfg.segMaxStack})
	if err != nil {
		return nil, err
	}
	wal, recs, err := storage.OpenWAL(path + walSuffix)
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*Index, error) {
		wal.Close()
		return nil, err
	}
	f, err := os.Open(path + collSuffix)
	if err != nil {
		return fail(fmt.Errorf("hopi: open collection: %w", err))
	}
	c, collSeq, scope, err := xmlmodel.DecodeCollectionMeta(f)
	f.Close()
	if err != nil {
		return fail(err)
	}
	if scope == 0 {
		scope = newEpoch()
	}
	segSeq, n, withDist, live := store.Info()
	cover := &twohop.Cover{WithDist: withDist}
	cover.AdoptBase(twohop.NewBase(store.Current()), n, int(live))
	maxSeq := collSeq
	if segSeq > maxSeq {
		maxSeq = segSeq
	}
	for _, rec := range recs {
		if rec.IsCheckpoint() {
			// segment WALs never journal page images; tolerate one from
			// a foreign log rather than misreading it as a batch
			continue
		}
		if rec.Seq > segSeq {
			// the manifest sequence is the segment analogue of the
			// B-tree store's applied-sequence stamp: batches the seal
			// already covers are skipped, so a checkpoint that crashed
			// between sealing and truncating the WAL replays cleanly
			cover.Apply(rec.Ops)
		}
		if rec.Seq > collSeq {
			ops, err := core.DecodeCollOps(rec.Coll)
			if err != nil {
				return fail(fmt.Errorf("hopi: wal replay (batch %d): %w", rec.Seq, err))
			}
			if err := core.ReplayCollOps(c, ops); err != nil {
				return fail(fmt.Errorf("hopi: wal replay (batch %d): %w", rec.Seq, err))
			}
		}
		if rec.Seq > maxSeq {
			maxSeq = rec.Seq
		}
	}
	coll := &Collection{c: c}
	ix := &Index{coll: coll, ix: core.NewFromCover(c, cover), scope: scope}
	ix.seqEpoch = true
	ix.epoch.Store(maxSeq)
	d := &durableState{path: path, wal: wal, nextSeq: maxSeq + 1, segs: store, segThreshold: cfg.threshold()}
	ix.wireWAL(wal)
	d.maint = ix.metrics().maintSeconds
	d.startCompactor()
	ix.dur = d
	// fold the replayed tail into a sealed segment and truncate the
	// log; with an empty tail this only restamps the manifest
	if err := ix.doCheckpoint(maxSeq); err != nil {
		d.stopCompactor()
		ix.dur = nil
		return fail(err)
	}
	return ix, nil
}

// openFromSegments loads a segment store's sealed labels for plain
// (non-durable) Open: the cover adopts the mmap'd base read-only and
// the files stay untouched, like the B-tree path's ToCover load.
func openFromSegments(path string, coll *Collection) (*Index, error) {
	store, err := segment.OpenStore(path+segsSuffix, segment.Options{})
	if err != nil {
		return nil, err
	}
	_, n, withDist, live := store.Info()
	cover := &twohop.Cover{WithDist: withDist}
	cover.AdoptBase(twohop.NewBase(store.Current()), n, int(live))
	h := &Index{coll: coll, ix: core.NewFromCover(coll.c, cover), scope: newEpoch()}
	h.epoch.Store(newEpoch())
	return h, nil
}

// sealCheckpoint is the segment backend's checkpoint: seal the
// in-memory delta into one new segment (manifest-only when the delta
// is empty), swap the cover onto the new base, rewrite the collection
// sidecar, and truncate the WAL. The logical state is unchanged, so
// the epoch is not bumped and published snapshots, cursors and resume
// tokens all stay valid. The caller holds ix.mu exclusively.
func (ix *Index) sealCheckpoint(seq uint64) error {
	d := ix.dur
	cov := ix.ix.Cover()
	if !cov.Seg() {
		return fmt.Errorf("hopi: segment checkpoint on a flat cover")
	}
	st, err := d.segs.Seal(seq, cov.N(), int64(cov.Size()), cov.DeltaRecords())
	if err != nil {
		return err
	}
	// the seal is durable: from here on a crash replays nothing of the
	// delta (the manifest sequence guards the WAL tail), so swapping
	// the in-memory view is safe even if the steps below fail
	ix.ix.SealSwapBase(twohop.NewBase(st))
	if err := writeCollFile(d.path+collSuffix, ix.coll.c, seq, ix.scope); err != nil {
		return err
	}
	if err := d.wal.Reset(); err != nil {
		return err
	}
	d.kickCompactor()
	return nil
}

// resealAll replaces the whole sealed stack with one segment holding
// the complete current label set — the segment backend's Rebuild
// commit, where a wholesale cover swap cannot be expressed as delta
// tombstones. The cover re-adopts the fresh base (Rebuild left it
// flat), the sidecar is rewritten, and the WAL is truncated.
func (ix *Index) resealAll(seq uint64) error {
	d := ix.dur
	cov := ix.ix.Cover()
	st, err := d.segs.Reset(seq, cov.N(), int64(cov.Size()), cov.FullRecords())
	if err != nil {
		return err
	}
	ix.ix.AdoptSegmentBase(twohop.NewBase(st), cov.N(), cov.Size())
	if err := writeCollFile(d.path+collSuffix, ix.coll.c, seq, ix.scope); err != nil {
		return err
	}
	return d.wal.Reset()
}

// --- background compactor ---------------------------------------------

// startCompactor launches the store's compaction goroutine: each kick
// folds the stack while it exceeds MaxStack. Compaction never takes
// ix.mu — it merges a pinned immutable stack and swaps it in under the
// store's own locks, so Apply and queries proceed concurrently; the
// live cover keeps reading its pinned (possibly unlinked) segments
// until the next seal swaps it forward.
func (d *durableState) startCompactor() {
	d.compactKick = make(chan struct{}, 1)
	d.compactDone = make(chan struct{})
	go func() {
		defer close(d.compactDone)
		for range d.compactKick {
			for d.segs.NeedsCompaction() {
				start := time.Now()
				if ok, err := d.segs.Compact(); err != nil || !ok {
					break
				}
				d.maint.With("compact").ObserveSince(start)
			}
		}
	}()
}

func (d *durableState) kickCompactor() {
	if d.compactKick == nil {
		return
	}
	select {
	case d.compactKick <- struct{}{}:
	default: // a kick is already pending
	}
}

// stopCompactor drains the compactor; safe on B-tree backends (no-op).
func (d *durableState) stopCompactor() {
	if d.compactKick == nil {
		return
	}
	close(d.compactKick)
	<-d.compactDone
	d.compactKick = nil
}

// --- observability ----------------------------------------------------

// SegmentStats describes the segment backend for /stats endpoints.
// Zero-valued with Enabled=false on B-tree backed or in-memory
// indexes.
type SegmentStats struct {
	// Enabled reports whether the index is backed by a segment store.
	Enabled bool `json:"enabled"`
	// Segments is the sealed segment file count in the current stack.
	Segments int `json:"segments"`
	// SealedBytes is the total on-disk size of the sealed stack.
	SealedBytes int64 `json:"sealedBytes"`
	// SealedPosts counts label postings in sealed files, including
	// entries shadowed by newer segments (compaction removes those).
	SealedPosts int64 `json:"sealedPosts"`
	// SealedTombs counts tombstones awaiting compaction.
	SealedTombs int64 `json:"sealedTombs"`
	// LiveEntries is the logical live label count |L|.
	LiveEntries int64 `json:"liveEntries"`
	// DeltaEntries is the in-memory delta size (adds + tombstones);
	// sealing resets it to 0.
	DeltaEntries int `json:"deltaEntries"`
	// SealedSeq is the WAL sequence the sealed state reflects.
	SealedSeq uint64 `json:"sealedSeq"`
	// Compactions counts completed stack compactions.
	Compactions uint64 `json:"compactions"`
	// CompactionBacklog is how many segments the stack is over the
	// compaction threshold (0 when within bounds).
	CompactionBacklog int `json:"compactionBacklog"`
	// Mmapped reports whether every sealed segment reads through mmap
	// (false when any fell back to pread).
	Mmapped bool `json:"mmapped"`
	// ReadErrors counts sealed reads that hit an I/O error and were
	// served as empty (0 in mmap mode; post-open validation makes
	// corruption unreachable, so this tracks pread failures only).
	ReadErrors uint64 `json:"readErrors"`
	// BytesPerLabel is SealedBytes / LiveEntries — compare against the
	// 16 bytes/entry of the flat in-memory layout (§3.4 accounting).
	BytesPerLabel float64 `json:"bytesPerLabel"`
}

// SegmentStats reports the segment backend's shape and health. Safe to
// call concurrently with Apply and queries.
func (ix *Index) SegmentStats() SegmentStats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	d := ix.dur
	if d == nil || d.segs == nil {
		// no attached store, but the cover may still read from adopted
		// segment files (a replica bootstrapped from a segmented
		// primary, or a plain Open of a segment store): report the
		// stack shape directly
		cov := ix.ix.Cover()
		if !cov.Seg() {
			return SegmentStats{}
		}
		out := SegmentStats{Enabled: true, Mmapped: true}
		for _, seg := range cov.Base().Stack().Segs {
			m := seg.Meta()
			out.Segments++
			out.SealedBytes += seg.SizeBytes()
			out.SealedPosts += m.Posts
			out.SealedTombs += m.Tombs
			if m.Seq > out.SealedSeq {
				out.SealedSeq = m.Seq
			}
			if !seg.Mmapped() {
				out.Mmapped = false
			}
		}
		out.LiveEntries = int64(cov.Size())
		out.DeltaEntries = cov.DeltaEntries()
		out.ReadErrors = cov.Base().Errors()
		if out.LiveEntries > 0 {
			out.BytesPerLabel = float64(out.SealedBytes) / float64(out.LiveEntries)
		}
		return out
	}
	st := d.segs.Stats()
	out := SegmentStats{
		Enabled:     true,
		Segments:    st.Segments,
		SealedBytes: st.SealedBytes,
		SealedPosts: st.SealedPosts,
		SealedTombs: st.SealedTombs,
		LiveEntries: st.LiveEntries,
		SealedSeq:   st.Seq,
		Compactions: st.Compactions,
		Mmapped:     st.Mmapped,
	}
	cov := ix.ix.Cover()
	if cov.Seg() {
		out.DeltaEntries = cov.DeltaEntries()
		out.ReadErrors = cov.Base().Errors()
	}
	if over := st.Segments - d.segs.MaxStack(); over > 0 {
		out.CompactionBacklog = over
	}
	if st.LiveEntries > 0 {
		out.BytesPerLabel = float64(st.SealedBytes) / float64(st.LiveEntries)
	}
	return out
}
