package hopi

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"hopi/internal/gen"
)

// genIndex builds a distance-aware index over a generated citation
// network — large enough that limits and pages actually cut into the
// result set.
func genIndex(t *testing.T, docs int) *Index {
	t.Helper()
	coll := WrapCollection(gen.DBLP(gen.DefaultDBLP(docs, 11)))
	opts := DefaultOptions()
	opts.WithDistance = true
	opts.Seed = 11
	ix, err := Build(coll, opts)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func drainCursor(t *testing.T, cur *Cursor) []QueryResult {
	t.Helper()
	defer cur.Close()
	var out []QueryResult
	for cur.Next() {
		out = append(out, cur.Result())
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestQueryLimitIsPrefix is the regression test for the pre-cursor
// behavior (evaluate everything, slice afterwards): the limited result
// must be exactly a prefix of the unlimited one, plain and ranked —
// now produced WITHOUT full materialization.
func TestQueryLimitIsPrefix(t *testing.T) {
	ix := genIndex(t, 60)
	snap := ix.Snapshot()
	ctx := context.Background()
	for _, expr := range []string{"//article//author", "//abstract//para", "//*//cite"} {
		full, err := snap.QueryCtx(ctx, expr)
		if err != nil {
			t.Fatal(err)
		}
		fullRanked, err := snap.QueryCtx(ctx, expr, QueryRanked())
		if err != nil {
			t.Fatal(err)
		}
		if len(full) < 10 {
			t.Fatalf("%s: only %d matches, test collection too small", expr, len(full))
		}
		for _, limit := range []int{1, 3, 10, len(full) - 1, len(full), len(full) + 7} {
			got, err := snap.QueryCtx(ctx, expr, QueryLimit(limit))
			if err != nil {
				t.Fatal(err)
			}
			want := full
			if limit < len(full) {
				want = full[:limit]
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s limit %d: not a prefix of the unlimited result", expr, limit)
			}
			gotRanked, err := snap.QueryCtx(ctx, expr, QueryRanked(), QueryLimit(limit))
			if err != nil {
				t.Fatal(err)
			}
			wantRanked := fullRanked
			if limit < len(fullRanked) {
				wantRanked = fullRanked[:limit]
			}
			if len(gotRanked) != len(wantRanked) {
				t.Fatalf("%s ranked limit %d: %d results, want %d", expr, limit, len(gotRanked), len(wantRanked))
			}
			for i := range gotRanked {
				if gotRanked[i].Element != wantRanked[i].Element || gotRanked[i].Score != wantRanked[i].Score {
					t.Fatalf("%s ranked limit %d: [%d] = (%d, %g), want (%d, %g)", expr, limit, i,
						gotRanked[i].Element, gotRanked[i].Score, wantRanked[i].Element, wantRanked[i].Score)
				}
			}
		}
	}
}

// TestCursorRandomizedEquivalence drains cursors with random limits
// and resume points and compares against the materialized QueryCtx
// output — the cursor==slice property, public-API edition.
func TestCursorRandomizedEquivalence(t *testing.T) {
	ix := genIndex(t, 40)
	snap := ix.Snapshot()
	ctx := context.Background()
	rng := rand.New(rand.NewSource(23))
	for _, expr := range []string{"//article//author", "//article//cite", "//*//para"} {
		pq, err := Prepare(expr)
		if err != nil {
			t.Fatal(err)
		}
		for _, ranked := range []bool{false, true} {
			base := []QueryOption{}
			if ranked {
				base = append(base, QueryRanked())
			}
			full, err := snap.QueryCtx(ctx, expr, base...)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 30; trial++ {
				// random page walk: drain the whole result in random-size
				// pages via resume tokens, then compare the concatenation
				pageSize := 1 + rng.Intn(len(full)/2+1)
				var got []QueryResult
				token := ""
				for {
					opts := append(append([]QueryOption{}, base...), QueryLimit(pageSize))
					if token != "" {
						opts = append(opts, QueryResume(token))
					}
					cur, err := snap.Run(ctx, pq, opts...)
					if err != nil {
						t.Fatal(err)
					}
					page := drainCursor(t, cur)
					got = append(got, page...)
					if !cur.HasMore() {
						break
					}
					token = cur.Token()
					if len(got) > len(full) {
						t.Fatalf("%s ranked=%v: page walk overran the full result", expr, ranked)
					}
				}
				if len(got) != len(full) {
					t.Fatalf("%s ranked=%v pageSize %d: drained %d results, want %d", expr, ranked, pageSize, len(got), len(full))
				}
				for i := range got {
					if got[i].Element != full[i].Element || got[i].Score != full[i].Score {
						t.Fatalf("%s ranked=%v pageSize %d: [%d] diverged", expr, ranked, pageSize, i)
					}
				}
			}
		}
	}
}

// TestCursorTokenValidation: malformed tokens, tokens for another
// query, tokens with the wrong ranking mode, and tokens from an older
// epoch are all rejected with the right sentinel.
func TestCursorTokenValidation(t *testing.T) {
	ix := genIndex(t, 20)
	snap := ix.Snapshot()
	ctx := context.Background()
	pq, _ := Prepare("//article//author")

	cur, err := snap.Run(ctx, pq, QueryLimit(3))
	if err != nil {
		t.Fatal(err)
	}
	drainCursor(t, cur)
	token := cur.Token()
	if !cur.HasMore() {
		t.Fatal("expected more results past limit 3")
	}

	// the genuine token resumes
	cur2, err := snap.Run(ctx, pq, QueryLimit(3), QueryResume(token))
	if err != nil {
		t.Fatal(err)
	}
	if page := drainCursor(t, cur2); len(page) != 3 {
		t.Fatalf("resumed page: %d results", len(page))
	}

	// malformed tokens
	for _, bad := range []string{"garbage", "!!!", "QUJD", ""} {
		if bad == "" {
			continue
		}
		if _, err := snap.Run(ctx, pq, QueryResume(bad)); !errors.Is(err, ErrBadToken) {
			t.Errorf("token %q: err = %v, want ErrBadToken", bad, err)
		}
	}
	// a token for a different query
	other, _ := Prepare("//article//cite")
	if _, err := snap.Run(ctx, other, QueryResume(token)); !errors.Is(err, ErrBadToken) {
		t.Errorf("cross-query token: err = %v, want ErrBadToken", err)
	}
	// a token with the wrong ranking mode
	if _, err := snap.Run(ctx, pq, QueryRanked(), QueryResume(token)); !errors.Is(err, ErrBadToken) {
		t.Errorf("cross-mode token: err = %v, want ErrBadToken", err)
	}

	// maintenance bumps the epoch: the token goes stale on new snapshots
	if err := ix.InsertEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	fresh := ix.Snapshot()
	if fresh.Epoch() != snap.Epoch()+1 {
		t.Fatalf("epoch %d after one batch on epoch %d", fresh.Epoch(), snap.Epoch())
	}
	if _, err := fresh.Run(ctx, pq, QueryResume(token)); !errors.Is(err, ErrStaleToken) {
		t.Errorf("stale token: err = %v, want ErrStaleToken", err)
	}
	// ... but the reader still holding the old snapshot can keep paging
	cur3, err := snap.Run(ctx, pq, QueryLimit(3), QueryResume(token))
	if err != nil {
		t.Fatalf("old-snapshot resume: %v", err)
	}
	drainCursor(t, cur3)
}

// TestPreparedAcrossSnapshots: one PreparedQuery serves snapshots of
// different epochs (and different indexes) — it is state-independent.
func TestPreparedAcrossSnapshots(t *testing.T) {
	ix := genIndex(t, 20)
	pq, err := Prepare("//article//author")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	before := drainCursor(t, mustRun(t, ix.Snapshot(), ctx, pq))
	if err := ix.InsertEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	after := drainCursor(t, mustRun(t, ix.Snapshot(), ctx, pq))
	if len(before) == 0 || len(after) == 0 {
		t.Fatalf("prepared query stopped matching: %d then %d", len(before), len(after))
	}
	if pq.String() != "//article//author" || pq.NumSteps() != 2 {
		t.Errorf("prepared metadata: %q, %d steps", pq.String(), pq.NumSteps())
	}
	steps := pq.Steps()
	if steps[0].Axis != "//" || steps[0].Tag != "article" || steps[1].Tag != "author" {
		t.Errorf("prepared steps: %+v", steps)
	}
}

func mustRun(t *testing.T, s *Snapshot, ctx context.Context, pq *PreparedQuery, opts ...QueryOption) *Cursor {
	t.Helper()
	cur, err := s.Run(ctx, pq, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return cur
}

// TestSnapshotExplain: the public Explain surface reports the pushdown.
func TestSnapshotExplain(t *testing.T) {
	ix := genIndex(t, 40)
	snap := ix.Snapshot()
	pq, _ := Prepare("//article//author")

	ctx := context.Background()
	full, err := snap.Explain(ctx, pq)
	if err != nil {
		t.Fatal(err)
	}
	lim, err := snap.Explain(ctx, pq, QueryLimit(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Steps) != 2 || len(lim.Steps) != 2 {
		t.Fatalf("plans: %+v / %+v", full, lim)
	}
	if lim.Matches != 5 || full.Matches <= 5 {
		t.Fatalf("matches: full %d, limited %d", full.Matches, lim.Matches)
	}
	if lim.Steps[1].Postings >= full.Steps[1].Postings {
		t.Fatalf("limited run touched %d postings, full %d — pushdown missing", lim.Steps[1].Postings, full.Steps[1].Postings)
	}
	if _, err := snap.Explain(ctx, pq, QueryRanked(), QueryLimit(5)); err != nil {
		t.Fatal(err)
	}
	// Explain polls its context like every other entry point.
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := snap.Explain(cancelled, pq); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled explain: err = %v, want context.Canceled", err)
	}
}
