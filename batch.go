package hopi

import (
	"context"
	"errors"
	"fmt"
	"time"

	"hopi/internal/core"
	"hopi/internal/xmlmodel"
)

// Sentinel errors wrapped by maintenance and resolution failures;
// match with errors.Is. Callers translating errors to transport codes
// (e.g. hopiserve's HTTP statuses) rely on these rather than on error
// text, which embeds user-controlled names.
var (
	// ErrNotFound wraps failures to resolve a document, anchor, or link.
	ErrNotFound = errors.New("not found")
	// ErrExists wraps inserts that would shadow a live document's name.
	ErrExists = errors.New("already exists")
)

// Batch collects maintenance operations to be applied to an Index as
// one unit with Index.Apply. Batching amortizes the cost of snapshot
// and engine rebuilds: readers observe either the state before the
// batch or the state after it, never an intermediate one.
//
// Enqueueing records the operation only; names and element IDs are
// resolved at Apply time against the then-current state, so a batch
// may link to a document inserted earlier in the same batch (use the
// name-based InsertLink variants for that).
type Batch struct {
	ops []batchOp
}

// NewBatch returns an empty batch.
func NewBatch() *Batch { return &Batch{} }

// Len returns the number of queued operations.
func (b *Batch) Len() int { return len(b.ops) }

type opKind int

const (
	opInsertDoc opKind = iota
	opInsertXML
	opInsertEdge
	opInsertLink
	opDeleteEdge
	opDeleteLink
	opDeleteDoc
	opDeleteDocName
	opModifyDoc
	opRebuild
)

func (k opKind) String() string {
	switch k {
	case opInsertDoc:
		return "insert-document"
	case opInsertXML:
		return "insert-xml"
	case opInsertEdge:
		return "insert-edge"
	case opInsertLink:
		return "insert-link"
	case opDeleteEdge, opDeleteLink:
		return "delete-edge"
	case opDeleteDoc, opDeleteDocName:
		return "delete-document"
	case opModifyDoc:
		return "modify-document"
	case opRebuild:
		return "rebuild"
	}
	return "unknown"
}

type batchOp struct {
	kind    opKind
	doc     *Document
	pending []xmlmodel.PendingLink
	docID   DocID
	name    string
	from    ElemID
	to      ElemID
	// name-based link endpoints (resolved at Apply time)
	fromDoc, toDoc     string
	fromLocal, toLocal int32
	toAnchor           string
	byAnchor           bool
}

// InsertDocument queues a new document. The batch takes ownership of
// d; do not mutate it afterwards. Attach links with InsertEdge (global
// IDs) or InsertLink (names, also valid for this same batch's
// documents).
func (b *Batch) InsertDocument(d *Document) {
	b.ops = append(b.ops, batchOp{kind: opInsertDoc, doc: d})
}

// InsertXML parses an XML document and queues its insertion. Links in
// the document (idref, href) are resolved at Apply time; targets that
// cannot be resolved are reported in the op's result, not treated as
// errors. The parse itself happens eagerly so malformed input fails
// before the batch is applied.
func (b *Batch) InsertXML(name string, data []byte) error {
	doc, pending, err := xmlmodel.ParseDocument(name, data)
	if err != nil {
		return err
	}
	b.ops = append(b.ops, batchOp{kind: opInsertXML, doc: &Document{d: doc}, pending: pending})
	return nil
}

// InsertEdge queues a link between two existing elements, addressed by
// global element ID (valid as of the batch's Apply time).
func (b *Batch) InsertEdge(from, to ElemID) {
	b.ops = append(b.ops, batchOp{kind: opInsertEdge, from: from, to: to})
}

// InsertLink queues a link addressed by document name and local
// element index. Names are resolved at Apply time, so the endpoints
// may be documents inserted earlier in the same batch.
func (b *Batch) InsertLink(fromDoc string, fromLocal int32, toDoc string, toLocal int32) {
	b.ops = append(b.ops, batchOp{
		kind:    opInsertLink,
		fromDoc: fromDoc, fromLocal: fromLocal,
		toDoc: toDoc, toLocal: toLocal,
	})
}

// InsertLinkByAnchor queues a link whose target is addressed by anchor
// id within the target document ("" targets the root).
func (b *Batch) InsertLinkByAnchor(fromDoc string, fromLocal int32, toDoc, anchor string) {
	b.ops = append(b.ops, batchOp{
		kind: opInsertLink, byAnchor: true,
		fromDoc: fromDoc, fromLocal: fromLocal,
		toDoc: toDoc, toAnchor: anchor,
	})
}

// DeleteEdge queues the removal of a link between two global element
// IDs.
func (b *Batch) DeleteEdge(from, to ElemID) {
	b.ops = append(b.ops, batchOp{kind: opDeleteEdge, from: from, to: to})
}

// DeleteLink queues the removal of a link addressed by document name
// and local element index — the inverse of InsertLink, resolved at
// Apply time.
func (b *Batch) DeleteLink(fromDoc string, fromLocal int32, toDoc string, toLocal int32) {
	b.ops = append(b.ops, batchOp{
		kind:    opDeleteLink,
		fromDoc: fromDoc, fromLocal: fromLocal,
		toDoc: toDoc, toLocal: toLocal,
	})
}

// DeleteDocument queues the removal of a document by ID.
func (b *Batch) DeleteDocument(doc DocID) {
	b.ops = append(b.ops, batchOp{kind: opDeleteDoc, docID: doc})
}

// DeleteDocumentByName queues the removal of a document by name.
func (b *Batch) DeleteDocumentByName(name string) {
	b.ops = append(b.ops, batchOp{kind: opDeleteDocName, name: name})
}

// ModifyDocument queues the replacement of a document with a new
// version; inter-document links are re-attached as described at
// Index.ModifyDocument.
func (b *Batch) ModifyDocument(doc DocID, newDoc *Document) {
	b.ops = append(b.ops, batchOp{kind: opModifyDoc, docID: doc, doc: newDoc})
}

// Rebuild queues a from-scratch rebuild with the index's original
// options, restoring space efficiency after heavy maintenance churn.
func (b *Batch) Rebuild() {
	b.ops = append(b.ops, batchOp{kind: opRebuild})
}

// OpResult reports the outcome of one applied batch operation.
type OpResult struct {
	// Op names the operation kind ("insert-document", "delete-edge", ...).
	Op string
	// Doc is the document affected: for inserts and modifications the
	// new document's ID, for document deletions the removed ID.
	Doc DocID
	// FastPath reports, for document deletions, whether the Theorem 2
	// separating-document fast path applied.
	FastPath bool
	// Unresolved lists, for XML inserts, link targets that could not be
	// resolved ("doc.xml#anchor").
	Unresolved []string
}

// ApplyResult reports the outcome of an Apply call, one entry per
// applied operation in batch order.
type ApplyResult struct {
	Results []OpResult
}

// Docs returns the IDs of documents created by the batch (inserts and
// modifications), in op order.
func (r *ApplyResult) Docs() []DocID {
	var out []DocID
	for _, op := range r.Results {
		switch op.Op {
		case "insert-document", "insert-xml", "modify-document":
			out = append(out, op.Doc)
		}
	}
	return out
}

// Apply executes the batch's operations in order under the index's
// write lock and then invalidates the cached snapshot, so the next
// Snapshot call observes the full batch. Readers holding earlier
// snapshots are unaffected, and no snapshot is ever built from
// mid-batch state — Apply holds the write lock for the whole batch.
//
// ctx is polled between operations: a cancelled context stops the
// batch at an operation boundary and returns ctx's error. If an
// operation fails, Apply stops there too (fail-stop, no rollback); the
// returned ApplyResult covers the operations that completed, and the
// next snapshot reflects them plus whatever partial effect the failed
// operation had (a failed multi-step op such as InsertXML may have
// applied some of its steps).
//
// On a durable index (Create, or Open with Durable) the batch's
// effects — including the partial effects of a failed op — are
// committed to the write-ahead log, fsynced, before Apply returns:
// once Apply returns, the batch survives a crash. If the durable
// commit itself fails, the attachment is poisoned and every later
// Apply fails fast; reopen the index from its path to recover the
// committed state.
func (ix *Index) Apply(ctx context.Context, b *Batch) (*ApplyResult, error) {
	if ix.readOnly {
		return nil, ErrReadOnlyReplica
	}
	met := ix.metrics()
	start := time.Now()
	ix.mu.Lock()
	defer ix.mu.Unlock()

	res := &ApplyResult{}
	attempted := false
	var log *core.ChangeLog
	defer func() {
		// Invalidate the cached snapshot if any op ran at all — a
		// failed op may still have mutated live state. Advancing the
		// epoch (while still holding the write lock) retires every
		// resume token issued against the pre-batch state. A healthy
		// durable index takes its epoch from the committed WAL
		// sequence, so replicas stamp identical states identically; a
		// batch that changed nothing (empty log) leaves the sequence —
		// and outstanding tokens — untouched. A poisoned durable
		// backend falls back to a random epoch: the in-memory state has
		// diverged from the committed sequence, so its epochs must stop
		// claiming sequence semantics.
		if attempted {
			if ix.seqEpoch && ix.dur != nil {
				if ix.dur.err == nil {
					ix.epoch.Store(ix.dur.nextSeq - 1)
				} else {
					ix.seqEpoch = false
					ix.epoch.Store(newEpoch())
				}
			} else {
				ix.epoch.Add(1)
			}
			ix.cur.Store(nil)
			// Hand the batch's summary to the live-query notifier,
			// stamped with the post-batch epoch (this defer runs after
			// StopRecording, which leaves the log's contents intact).
			if ws := ix.watch.Load(); ws != nil && log != nil && !log.Empty() {
				ws.observe(ix.epoch.Load(), ix.ix.Summarize(log))
				ws.signal()
			}
		}
	}()
	if ix.dur != nil {
		if err := ix.dur.err; err != nil {
			return res, fmt.Errorf("hopi: durable backend failed earlier, reopen the index: %w", err)
		}
	}
	// Record the typed change log when anything downstream consumes it:
	// the durable WAL, or a live-query watcher needing delta summaries.
	if ix.dur != nil || ix.watch.Load() != nil {
		log = ix.ix.StartRecording()
		defer ix.ix.StopRecording()
	}
	var opErr error
	for i := range b.ops {
		if err := ctx.Err(); err != nil {
			opErr = err
			break
		}
		attempted = true
		opRes, err := ix.applyOp(&b.ops[i])
		if err != nil {
			opErr = fmt.Errorf("hopi: batch op %d (%s): %w", i, b.ops[i].kind, err)
			break
		}
		res.Results = append(res.Results, opRes)
	}
	if ix.dur != nil && log != nil && !log.Empty() {
		if derr := ix.commitDurable(log); derr != nil {
			ix.dur.err = derr
			derr = fmt.Errorf("hopi: durable commit: %w", derr)
			if opErr != nil {
				return res, errors.Join(opErr, derr)
			}
			return res, derr
		}
	}
	if opErr == nil && attempted {
		met.applySeconds.ObserveSince(start)
	}
	return res, opErr
}

func (ix *Index) applyOp(o *batchOp) (res OpResult, err error) {
	// A panic escaping here would leave ix.mu locked forever when the
	// caller's recovery (e.g. net/http's) swallows it — every later
	// Apply and Snapshot would deadlock. Surface it as an op error
	// instead; the failed op may have applied partially, which the
	// fail-stop contract already covers.
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	res = OpResult{Op: o.kind.String()}
	switch o.kind {
	case opInsertDoc, opInsertXML:
		if err := o.doc.d.Validate(); err != nil {
			return res, err
		}
		// A second live document under the same name would shadow the
		// first in by-name lookups and orphan it for name-based
		// maintenance.
		if name := o.doc.d.Name; name != "" {
			if _, exists := ix.coll.c.DocByName(name); exists {
				return res, fmt.Errorf("document %q: %w", name, ErrExists)
			}
		}
		idx, err := ix.ix.InsertDocument(o.doc.d)
		if err != nil {
			return res, err
		}
		res.Doc = DocID(idx)
		for _, p := range o.pending {
			from := ix.coll.c.GlobalID(idx, p.FromLocal)
			to, ok := ix.resolveAnchor(p.TargetDoc, p.Anchor)
			if !ok {
				res.Unresolved = append(res.Unresolved, p.TargetDoc+"#"+p.Anchor)
				continue
			}
			if err := ix.ix.InsertEdge(from, to); err != nil {
				return res, err
			}
		}
	case opInsertEdge:
		if err := ix.checkElem(o.from); err != nil {
			return res, err
		}
		if err := ix.checkElem(o.to); err != nil {
			return res, err
		}
		return res, ix.ix.InsertEdge(o.from, o.to)
	case opInsertLink:
		fd, ok := ix.coll.c.DocByName(o.fromDoc)
		if !ok {
			return res, fmt.Errorf("document %q: %w", o.fromDoc, ErrNotFound)
		}
		if o.fromLocal < 0 || int(o.fromLocal) >= ix.coll.c.Docs[fd].Len() {
			return res, fmt.Errorf("element %d out of range for %q", o.fromLocal, o.fromDoc)
		}
		var to ElemID
		if o.byAnchor {
			to, ok = ix.resolveAnchor(o.toDoc, o.toAnchor)
			if !ok {
				return res, fmt.Errorf("anchor %q in %q: %w", o.toAnchor, o.toDoc, ErrNotFound)
			}
		} else {
			td, ok := ix.coll.c.DocByName(o.toDoc)
			if !ok {
				return res, fmt.Errorf("document %q: %w", o.toDoc, ErrNotFound)
			}
			if o.toLocal < 0 || int(o.toLocal) >= ix.coll.c.Docs[td].Len() {
				return res, fmt.Errorf("element %d out of range for %q", o.toLocal, o.toDoc)
			}
			to = ix.coll.c.GlobalID(td, o.toLocal)
		}
		return res, ix.ix.InsertEdge(ix.coll.c.GlobalID(fd, o.fromLocal), to)
	case opDeleteEdge:
		return res, ix.ix.DeleteEdge(o.from, o.to)
	case opDeleteLink:
		fd, ok := ix.coll.c.DocByName(o.fromDoc)
		if !ok {
			return res, fmt.Errorf("document %q: %w", o.fromDoc, ErrNotFound)
		}
		td, ok := ix.coll.c.DocByName(o.toDoc)
		if !ok {
			return res, fmt.Errorf("document %q: %w", o.toDoc, ErrNotFound)
		}
		if o.fromLocal < 0 || int(o.fromLocal) >= ix.coll.c.Docs[fd].Len() {
			return res, fmt.Errorf("element %d out of range for %q", o.fromLocal, o.fromDoc)
		}
		if o.toLocal < 0 || int(o.toLocal) >= ix.coll.c.Docs[td].Len() {
			return res, fmt.Errorf("element %d out of range for %q", o.toLocal, o.toDoc)
		}
		return res, ix.ix.DeleteEdge(ix.coll.c.GlobalID(fd, o.fromLocal), ix.coll.c.GlobalID(td, o.toLocal))
	case opDeleteDoc:
		res.Doc = o.docID
		fast, err := ix.ix.DeleteDocument(int(o.docID))
		res.FastPath = fast
		return res, err
	case opDeleteDocName:
		d, ok := ix.coll.c.DocByName(o.name)
		if !ok {
			return res, fmt.Errorf("document %q: %w", o.name, ErrNotFound)
		}
		res.Doc = DocID(d)
		fast, err := ix.ix.DeleteDocument(d)
		res.FastPath = fast
		return res, err
	case opModifyDoc:
		// Same collision rule as insertion: the replacement may keep the
		// old document's name (the common case) but must not shadow a
		// different live document.
		if name := o.doc.d.Name; name != "" {
			if d, exists := ix.coll.c.DocByName(name); exists && d != int(o.docID) {
				return res, fmt.Errorf("document %q: %w", name, ErrExists)
			}
		}
		idx, err := ix.ix.ModifyDocument(int(o.docID), o.doc.d)
		res.Doc = DocID(idx)
		return res, err
	case opRebuild:
		return res, ix.ix.Rebuild()
	}
	return res, nil
}

// resolveAnchor resolves (document name, anchor) to a global element
// ID; an empty anchor targets the document root.
func (ix *Index) resolveAnchor(docName, anchor string) (ElemID, bool) {
	d, ok := ix.coll.c.DocByName(docName)
	if !ok {
		return 0, false
	}
	var local int32
	if anchor != "" {
		local, ok = ix.coll.c.Docs[d].AnchorElement(anchor)
		if !ok {
			return 0, false
		}
	}
	return ix.coll.c.GlobalID(d, local), true
}

func (ix *Index) checkElem(id ElemID) error {
	if id < 0 || int(id) >= ix.coll.c.NumAllocatedIDs() {
		return fmt.Errorf("element %d out of range", id)
	}
	if !ix.coll.c.Alive(ix.coll.c.DocOfID(id)) {
		return fmt.Errorf("element %d belongs to a removed document", id)
	}
	return nil
}
